"""A reactive DTM controller in the storage-simulation loop.

The paper sketches DTM mechanisms and leaves control policies to future
work; this module provides the straightforward reactive policy as an
extension: a thermally coupled storage system where

* the drive runs at an *average-case* RPM above what the worst-case
  envelope would allow,
* a thermal model is stepped alongside the event-driven simulation, its
  VCM heat scaled by the observed seek activity, and
* when the modeled air temperature crosses a trigger threshold, the
  controller gates incoming requests (and optionally drops to a low RPM
  level) until the temperature falls below a resume threshold.

Requests arriving while throttled are queued at the gate; their response
times include the throttle delay, exposing the performance cost of DTM.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm.multispeed import MultiSpeedProfile
from repro.errors import DTMError
from repro.simulation.events import EventQueue
from repro.simulation.request import Request
from repro.simulation.statistics import ResponseTimeStats
from repro.simulation.system import StorageSystem

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.dtm.policies import ThermalPolicy
    from repro.faults import ThermalEmergencyModel
    from repro.telemetry import Telemetry
from repro.thermal.model import DriveThermalModel
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class DTMPolicy:
    """Reactive throttling policy parameters.

    Attributes:
        envelope_c: hard thermal limit.
        trigger_margin_c: throttle when air rises above
            ``envelope - trigger_margin``.
        resume_margin_c: resume when air falls below
            ``envelope - resume_margin`` (must exceed the trigger margin —
            this is the hysteresis band).
        check_interval_ms: how often the controller samples the thermal
            model and updates its decision.
        speed_profile: optional multi-speed profile; when present, the
            controller drops to the bottom level while throttled
            (scenario (b)); otherwise it only gates requests
            (scenario (a)).
    """

    envelope_c: float = THERMAL_ENVELOPE_C
    trigger_margin_c: float = 0.02
    resume_margin_c: float = 0.10
    check_interval_ms: float = 100.0
    speed_profile: Optional[MultiSpeedProfile] = None

    def __post_init__(self) -> None:
        if self.trigger_margin_c < 0:
            raise DTMError("trigger margin cannot be negative")
        if self.resume_margin_c <= self.trigger_margin_c:
            raise DTMError(
                "resume margin must exceed trigger margin (hysteresis band)"
            )
        if self.check_interval_ms <= 0:
            raise DTMError("check interval must be positive")

    @property
    def trigger_c(self) -> float:
        return self.envelope_c - self.trigger_margin_c

    @property
    def resume_c(self) -> float:
        return self.envelope_c - self.resume_margin_c


@dataclass
class DTMReport:
    """Outcome of a thermally managed trace replay.

    Attributes:
        stats: logical response-time statistics (gate delay included).
        max_air_c: hottest modeled air temperature observed.
        throttled_ms: total simulated time spent throttled.
        simulated_ms: total simulated time.
        throttle_events: number of throttle engagements.
        emergency_events: number of emergency-throttle engagements
            (envelope breach or injected thermal emergency).
    """

    stats: ResponseTimeStats
    max_air_c: float
    throttled_ms: float
    simulated_ms: float
    throttle_events: int = 0
    emergency_events: int = 0

    @property
    def throttled_fraction(self) -> float:
        if self.simulated_ms <= 0:
            return 0.0
        return min(self.throttled_ms / self.simulated_ms, 1.0)


class ThermallyManagedSystem:
    """A storage system under reactive dynamic thermal management.

    Args:
        system: the storage system to protect.
        thermal: thermal model of the (representative) member drive,
            already configured at the average-case RPM.
        policy: the reactive policy.
        emergency_model: optional injected thermal-emergency source
            (fault injection); independent of it, a genuine envelope
            breach always takes the emergency path.
    """

    def __init__(
        self,
        system: StorageSystem,
        thermal: DriveThermalModel,
        policy: DTMPolicy,
        telemetry: Optional["Telemetry"] = None,
        emergency_model: Optional["ThermalEmergencyModel"] = None,
    ) -> None:
        from repro.telemetry import maybe

        self.system = system
        self.thermal = thermal
        self.policy = policy
        self.emergency_model = emergency_model
        self.gate_open = True
        self.in_emergency = False
        self._emergency_rpm: Optional[float] = None
        self._gated: Deque[Request] = deque()
        self._last_check_ms = 0.0
        self._busy_snapshot = 0.0
        self.report = DTMReport(
            stats=system.stats, max_air_c=thermal.air_c(), throttled_ms=0.0, simulated_ms=0.0
        )
        self._full_rpm = thermal.rpm
        if policy.speed_profile is not None:
            if policy.speed_profile.top_rpm != thermal.rpm:
                raise DTMError(
                    "speed profile's top level must match the thermal model RPM"
                )
        self._tel = maybe(telemetry)
        if self._tel is not None:
            thermal.attach_probes(self._tel.probes)
            self._tel.probes.add(
                "dtm.gate_open", lambda: 1.0 if self.gate_open else 0.0
            )
            self._tel.probes.add(
                "dtm.gated_requests", lambda: float(len(self._gated))
            )

    # -- trace replay ----------------------------------------------------------------

    def run_trace(self, trace: Trace, max_extra_ms: float = 300_000.0) -> DTMReport:
        """Replay a trace with the controller in the loop.

        Args:
            trace: the workload.
            max_extra_ms: runaway guard — if the simulation runs this far
                past the last arrival without draining (e.g. a resume
                threshold below the cooling-mode steady temperature keeps
                the gate shut forever), a DTMError is raised.
        """
        events = self.system.events
        last_arrival = 0.0
        for record in trace:
            last_arrival = max(last_arrival, record.time_ms)
            request = Request(
                arrival_ms=record.time_ms,
                lba=record.lba,
                sectors=record.sectors,
                is_write=record.is_write,
            )
            events.schedule(record.time_ms, lambda t, r=request: self._arrive(r))
        self._schedule_check()
        deadline = last_arrival + max_extra_ms
        # Run until all I/O completes; the periodic check event keeps the
        # queue non-empty, so run until only checks remain and the gate is
        # drained.
        while len(events) > 0:
            events.step()
            if (
                self.system.array.in_flight() == 0
                and not self._gated
                and events_only_checks(events)
            ):
                break
            if events.now_ms > deadline:
                raise DTMError(
                    "DTM controller never drained the workload: the policy "
                    "appears unable to resume (is the resume threshold below "
                    "the cooling-mode steady temperature?)"
                )
        self.report.simulated_ms = events.now_ms
        return self.report

    # -- internals ---------------------------------------------------------------------

    def _arrive(self, request: Request) -> None:
        if self.gate_open:
            self.system.array.submit(request)
        else:
            self._gated.append(request)

    def _schedule_check(self) -> None:
        self.system.events.schedule_after(
            self.policy.check_interval_ms, lambda t: self._check(t)
        )

    def _check(self, now_ms: float) -> None:
        interval_ms = now_ms - self._last_check_ms
        self._last_check_ms = now_ms
        if interval_ms > 0:
            self._advance_thermal(interval_ms)
        air = self.thermal.air_c()
        self.report.max_air_c = max(self.report.max_air_c, air)
        if self._tel is not None:
            # The controller's periodic check is the thermal sampling
            # cadence: probes ride it instead of scheduling their own.
            self._tel.probes.sample_all(now_ms)
            self._tel.record(
                now_ms, "dtm_check", "dtm", air_c=air, gate_open=self.gate_open
            )
        emergency = air >= self.policy.envelope_c or (
            self.emergency_model is not None
            and self.emergency_model.should_trigger(air, self.policy.envelope_c)
        )
        if emergency and not self.in_emergency:
            self._engage_emergency(air)
        elif self.gate_open and air >= self.policy.trigger_c:
            self._engage_throttle()
        elif not self.gate_open and air <= self.policy.resume_c:
            self._release_throttle()
        if not self.gate_open:
            self.report.throttled_ms += self.policy.check_interval_ms
        if (
            len(self.system.events) > 0
            or self.system.array.in_flight() > 0
            or self._gated
        ):
            self._schedule_check()

    def _advance_thermal(self, interval_ms: float) -> None:
        busy_now = sum(d.stats.busy_ms for d in self.system.disks)
        delta_busy = busy_now - self._busy_snapshot
        self._busy_snapshot = busy_now
        duty = min(delta_busy / (interval_ms * len(self.system.disks)), 1.0)
        self.thermal.set_vcm_duty(0.0 if not self.gate_open else duty)
        self.thermal.network.step(interval_ms / 1000.0)

    def _engage_throttle(self) -> None:
        self.gate_open = False
        self.report.throttle_events += 1
        if self._tel is not None:
            self._tel.record(
                self.system.events.now_ms,
                "dtm_throttle",
                "dtm",
                air_c=self.thermal.air_c(),
                rpm_drop=self.policy.speed_profile is not None,
            )
            self._tel.count("dtm.throttle_engagements")
        if self.policy.speed_profile is not None:
            low = self.policy.speed_profile.bottom_rpm
            self.thermal.set_operating_state(rpm=low, vcm_active=False)
            for disk in self.system.disks:
                disk.set_rpm(low)
        else:
            self.thermal.set_operating_state(vcm_active=False)

    def _engage_emergency(self, air_c: float) -> None:
        """Emergency throttle: the envelope is breached (or an injected
        thermal emergency fired).  Instead of treating the breach as an
        error, degrade gracefully — gate requests and drop the spindle to
        the fastest speed the drive can cool at — then recover through the
        normal resume hysteresis."""
        if self.gate_open:
            self._engage_throttle()
        self.in_emergency = True
        self.report.emergency_events += 1
        low = self._emergency_target_rpm()
        self.thermal.set_operating_state(rpm=low, vcm_active=False)
        for disk in self.system.disks:
            disk.set_rpm(low)
        if self._tel is not None:
            self._tel.record(
                self.system.events.now_ms,
                "dtm_emergency",
                "dtm",
                air_c=air_c,
                rpm=low,
                envelope_c=self.policy.envelope_c,
            )
            self._tel.count("dtm.emergency_engagements")

    def _emergency_target_rpm(self) -> float:
        """The RPM the emergency path degrades to (computed once)."""
        if self.policy.speed_profile is not None:
            return self.policy.speed_profile.bottom_rpm
        if self._emergency_rpm is None:
            from repro.dtm.throttling import emergency_rpm_for

            self._emergency_rpm = emergency_rpm_for(
                self.thermal, self.policy.envelope_c, self._full_rpm
            )
        return self._emergency_rpm

    def _release_throttle(self) -> None:
        self.gate_open = True
        restore_disks = self.policy.speed_profile is not None or self.in_emergency
        self.in_emergency = False
        if self._tel is not None:
            self._tel.record(
                self.system.events.now_ms,
                "dtm_resume",
                "dtm",
                air_c=self.thermal.air_c(),
                released=len(self._gated),
            )
            self._tel.count("dtm.resumes")
        self.thermal.set_operating_state(rpm=self._full_rpm, vcm_active=True)
        if restore_disks:
            for disk in self.system.disks:
                disk.set_rpm(self._full_rpm)
        while self._gated:
            self.system.array.submit(self._gated.popleft())


def events_only_checks(events: EventQueue) -> bool:
    """Heuristic terminal condition: nothing left but controller checks.

    The controller's periodic check is the only self-rescheduling event, so
    when at most one event remains the I/O side is finished.
    """
    return len(events) <= 1


class PolicyManagedSystem:
    """A storage system driven by a pluggable :class:`ThermalPolicy`.

    Generalizes :class:`ThermallyManagedSystem`: the policy may gate
    admission, enforce a minimum inter-issue gap (request spacing), or
    command a spindle speed (DRPM ladders) — the §5.4 design space.

    Args:
        system: the storage system under management.
        thermal: thermal model of the representative member drive.
        policy: the control policy.
        check_interval_ms: thermal-model/controller update period.
    """

    def __init__(
        self,
        system: StorageSystem,
        thermal: DriveThermalModel,
        policy: "ThermalPolicy",
        check_interval_ms: float = 50.0,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        from repro.dtm.policies import ThermalPolicy
        from repro.telemetry import maybe

        if not isinstance(policy, ThermalPolicy):
            raise DTMError("policy must be a ThermalPolicy")
        if check_interval_ms <= 0:
            raise DTMError("check interval must be positive")
        self.system = system
        self.thermal = thermal
        self.policy = policy
        self.check_interval_ms = check_interval_ms
        self._pending: Deque[Request] = deque()
        self._admit = True
        self._gap_ms = 0.0
        self._last_issue_ms = -1e18
        self._last_check_ms = 0.0
        self._busy_snapshot = 0.0
        self._current_rpm = thermal.rpm
        self.rpm_changes = 0
        self.report = DTMReport(
            stats=system.stats,
            max_air_c=thermal.air_c(),
            throttled_ms=0.0,
            simulated_ms=0.0,
        )
        self._tel = maybe(telemetry)
        if self._tel is not None:
            thermal.attach_probes(self._tel.probes)
            self._tel.probes.add(
                "dtm.admit", lambda: 1.0 if self._admit else 0.0
            )
            self._tel.probes.add("dtm.issue_gap_ms", lambda: self._gap_ms)
            self._tel.probes.add(
                "dtm.pending_requests", lambda: float(len(self._pending))
            )

    # -- trace replay -----------------------------------------------------------

    def run_trace(self, trace: Trace, max_extra_ms: float = 300_000.0) -> DTMReport:
        """Replay a trace under the policy.

        Args:
            trace: the workload.
            max_extra_ms: runaway guard past the last arrival (see
                :meth:`ThermallyManagedSystem.run_trace`).
        """
        events = self.system.events
        last_arrival = 0.0
        for record in trace:
            last_arrival = max(last_arrival, record.time_ms)
            request = Request(
                arrival_ms=record.time_ms,
                lba=record.lba,
                sectors=record.sectors,
                is_write=record.is_write,
            )
            events.schedule(record.time_ms, lambda t, r=request: self._arrive(r, t))
        self._schedule_check()
        deadline = last_arrival + max_extra_ms
        while len(events) > 0:
            events.step()
            if (
                self.system.array.in_flight() == 0
                and not self._pending
                and events_only_checks(events)
            ):
                break
            if events.now_ms > deadline:
                raise DTMError(
                    "policy never drained the workload within the guard "
                    "window: it cannot recover admission at this design "
                    "point (check thresholds against the cooling-mode "
                    "steady temperature)"
                )
        self.report.simulated_ms = events.now_ms
        return self.report

    # -- internals -----------------------------------------------------------------

    def _arrive(self, request: Request, now: float) -> None:
        self._pending.append(request)
        self._drain(now)

    def _drain(self, now: float) -> None:
        """Issue pending requests subject to admission and spacing."""
        while self._pending and self._admit:
            # Compute the remaining wait rather than the absolute release
            # time: with floats, last_issue + gap can round to <= now even
            # while now - last_issue < gap, which would re-fire the release
            # event at a frozen timestamp forever.
            wait = self._gap_ms - (now - self._last_issue_ms)
            if self._gap_ms > 0 and wait > 1e-9:
                self.system.events.schedule(now + wait, lambda t: self._drain(t))
                return
            self.system.array.submit(self._pending.popleft())
            self._last_issue_ms = now

    def _schedule_check(self) -> None:
        self.system.events.schedule_after(
            self.check_interval_ms, lambda t: self._check(t)
        )

    def _check(self, now: float) -> None:
        interval = now - self._last_check_ms
        self._last_check_ms = now
        if interval > 0:
            self._advance_thermal(interval)
        air = self.thermal.air_c()
        self.report.max_air_c = max(self.report.max_air_c, air)
        action = self.policy.decide(air, now)
        if self._tel is not None:
            self._tel.probes.sample_all(now)
            self._tel.record(
                now,
                "dtm_check",
                "dtm",
                air_c=air,
                admit=action.admit,
                issue_gap_ms=action.issue_gap_ms,
                rpm=action.rpm,
            )
        if not action.admit:
            self.report.throttled_ms += self.check_interval_ms
            if self._admit:
                self.report.throttle_events += 1
                if self._tel is not None:
                    self._tel.record(now, "dtm_throttle", "dtm", air_c=air)
                    self._tel.count("dtm.throttle_engagements")
        elif not self._admit and self._tel is not None:
            self._tel.record(now, "dtm_resume", "dtm", air_c=air)
            self._tel.count("dtm.resumes")
        self._admit = action.admit
        self._gap_ms = action.issue_gap_ms
        if action.rpm is not None and action.rpm != self._current_rpm:
            if self._tel is not None:
                self._tel.record(
                    now,
                    "rpm_change",
                    "dtm",
                    from_rpm=self._current_rpm,
                    to_rpm=action.rpm,
                )
            self._current_rpm = action.rpm
            self.rpm_changes += 1
            self.thermal.set_operating_state(rpm=action.rpm)
            for disk in self.system.disks:
                disk.set_rpm(action.rpm)
        self._drain(now)
        if (
            len(self.system.events) > 0
            or self.system.array.in_flight() > 0
            or self._pending
        ):
            self._schedule_check()

    def _advance_thermal(self, interval_ms: float) -> None:
        busy = sum(d.stats.busy_ms for d in self.system.disks)
        delta = busy - self._busy_snapshot
        self._busy_snapshot = busy
        duty = min(delta / (interval_ms * len(self.system.disks)), 1.0)
        self.thermal.set_vcm_duty(duty)
        self.thermal.network.step(interval_ms / 1000.0)
