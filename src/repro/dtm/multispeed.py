"""Multi-speed disk support.

Scenario (b) of §5.3 needs a disk with two RPM levels — like the Hitachi
drive [24] the paper cites — and the slack-exploitation mechanism of §5.2
benefits from full multi-speed (DRPM [18]) disks.  This module models the
speed ladder and the transition costs; the thermal side of a speed change
is handled by :class:`repro.thermal.model.DriveThermalModel`, and the
performance side by :meth:`repro.simulation.disk.SimulatedDisk.set_rpm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import DTMError


@dataclass(frozen=True)
class MultiSpeedProfile:
    """A disk's available spindle speeds and transition behaviour.

    Attributes:
        rpm_levels: allowed speeds, strictly increasing.
        transition_s_per_krpm: seconds needed per 1000 RPM of change
            (spin-up/-down is limited by spindle-motor torque).
        min_dwell_s: minimum time to stay at a level before switching
            again (guards against thrashing the spindle motor).
        serves_at_lower_levels: whether requests can be serviced while at
            a lower level (full DRPM) or only at the top level (the
            2-level throttling disk of §5.3, which always serves at the
            highest RPM).
    """

    rpm_levels: Tuple[float, ...]
    transition_s_per_krpm: float = 0.4
    min_dwell_s: float = 1.0
    serves_at_lower_levels: bool = False

    def __post_init__(self) -> None:
        if len(self.rpm_levels) < 2:
            raise DTMError("a multi-speed profile needs at least two levels")
        if any(r <= 0 for r in self.rpm_levels):
            raise DTMError("rpm levels must be positive")
        if list(self.rpm_levels) != sorted(set(self.rpm_levels)):
            raise DTMError("rpm levels must be strictly increasing")
        if self.transition_s_per_krpm < 0 or self.min_dwell_s < 0:
            raise DTMError("transition parameters cannot be negative")

    @property
    def top_rpm(self) -> float:
        return self.rpm_levels[-1]

    @property
    def bottom_rpm(self) -> float:
        return self.rpm_levels[0]

    def transition_time_s(self, from_rpm: float, to_rpm: float) -> float:
        """Time to move between two levels."""
        self._check_level(from_rpm)
        self._check_level(to_rpm)
        return abs(to_rpm - from_rpm) / 1000.0 * self.transition_s_per_krpm

    def nearest_level_at_or_below(self, rpm: float) -> float:
        """Highest level not exceeding ``rpm``.

        Raises:
            DTMError: if every level exceeds ``rpm``.
        """
        candidates = [level for level in self.rpm_levels if level <= rpm]
        if not candidates:
            raise DTMError(
                f"no speed level at or below {rpm:.0f} RPM in {self.rpm_levels}"
            )
        return candidates[-1]

    def _check_level(self, rpm: float) -> None:
        if rpm not in self.rpm_levels:
            raise DTMError(f"{rpm} is not one of the levels {self.rpm_levels}")


def two_level_profile(high_rpm: float, low_rpm: float) -> MultiSpeedProfile:
    """The §5.3 throttling disk: two levels, service only at the top."""
    if low_rpm >= high_rpm:
        raise DTMError("low level must be below high level")
    return MultiSpeedProfile(rpm_levels=(low_rpm, high_rpm))


def drpm_profile(
    top_rpm: float, levels: int = 5, step_rpm: float = 2400.0
) -> MultiSpeedProfile:
    """A DRPM-style ladder below ``top_rpm`` that can serve at any level."""
    if levels < 2:
        raise DTMError("need at least two levels")
    if step_rpm <= 0:
        raise DTMError("step must be positive")
    ladder = tuple(top_rpm - step_rpm * i for i in range(levels - 1, -1, -1))
    if ladder[0] <= 0:
        raise DTMError("ladder bottoms out below zero RPM")
    return MultiSpeedProfile(rpm_levels=ladder, serves_at_lower_levels=True)
