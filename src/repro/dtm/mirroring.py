"""Mirrored-disk DTM (paper §5.4).

"It is also possible to use mirrored disks (i.e. writes propagate to both)
while reads are directed to one for a while, and then sent to another
during the cool down period."  This module implements that mechanism: a
RAID-1 pair where a DTM policy alternates the read target on a fixed
period, halving each member's seek duty and letting the idle mirror cool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import DTMError
from repro.simulation.disk import SimulatedDisk, standard_disk
from repro.simulation.events import EventQueue
from repro.simulation.raid import Raid1Geometry
from repro.simulation.request import Request
from repro.simulation.statistics import ResponseTimeStats
from repro.simulation.system import StorageSystem
from repro.thermal.model import DriveThermalModel, ThermalCalibration
from repro.workloads.trace import Trace


@dataclass
class MirrorReport:
    """Outcome of an alternating-mirror run.

    Attributes:
        stats: logical response-time statistics.
        max_air_c: hottest modeled air temperature across both mirrors.
        switches: number of read-target alternations performed.
        per_disk_seek_duty: seek duty of each mirror over the run.
        simulated_ms: simulated duration.
    """

    stats: ResponseTimeStats
    max_air_c: float
    switches: int
    per_disk_seek_duty: List[float]
    simulated_ms: float


class AlternatingMirror:
    """A mirrored pair whose read target alternates for thermal relief.

    Args:
        rpm: spindle speed of both mirrors (may exceed the envelope-design
            speed — that is the point).
        diameter_in: platter size.
        platters: platters per mirror.
        switch_period_ms: how often reads move to the other mirror.
        ambient_c: external ambient for the thermal models.
        calibration: thermal calibration.
    """

    def __init__(
        self,
        rpm: float,
        diameter_in: float = 2.6,
        platters: int = 1,
        switch_period_ms: float = 2000.0,
        kbpi: float = 570.0,
        ktpi: float = 64.0,
        ambient_c: float = AMBIENT_TEMPERATURE_C,
        calibration: Optional[ThermalCalibration] = None,
    ) -> None:
        if switch_period_ms <= 0:
            raise DTMError("switch period must be positive")
        self.events = EventQueue()
        self.switch_period_ms = switch_period_ms
        self.disks: List[SimulatedDisk] = [
            standard_disk(
                name=f"mirror{i}",
                events=self.events,
                diameter_in=diameter_in,
                platters=platters,
                kbpi=kbpi,
                ktpi=ktpi,
                rpm=rpm,
            )
            for i in range(2)
        ]
        self.geometry = Raid1Geometry(disk_sectors=self.disks[0].total_sectors)
        self.system = StorageSystem(self.disks, self.geometry, self.events)
        self.thermal: List[DriveThermalModel] = []
        for _ in range(2):
            model = DriveThermalModel(
                platter_diameter_in=diameter_in,
                platter_count=platters,
                rpm=rpm,
                ambient_c=ambient_c,
                vcm_active=False,
                calibration=calibration,
            )
            model.settle()
            self.thermal.append(model)
        self.switches = 0
        self._busy_snapshots = [0.0, 0.0]
        self._last_update_ms = 0.0

    # -- replay -----------------------------------------------------------------

    def run_trace(self, trace: Trace, thermal_interval_ms: float = 50.0) -> MirrorReport:
        """Replay a trace with periodic alternation and thermal tracking."""
        if thermal_interval_ms <= 0:
            raise DTMError("thermal interval must be positive")
        events = self.events
        for record in trace:
            request = Request(
                arrival_ms=record.time_ms,
                lba=record.lba,
                sectors=record.sectors,
                is_write=record.is_write,
            )
            events.schedule(
                record.time_ms, lambda t, r=request: self.system.array.submit(r)
            )
        max_air = max(model.air_c() for model in self.thermal)

        def switch(now: float) -> None:
            self.geometry.set_read_target(1 - self.geometry.read_target)
            self.switches += 1
            if len(events) > 1 or self.system.array.in_flight() > 0:
                events.schedule_after(self.switch_period_ms, switch)

        def thermal_tick(now: float) -> None:
            nonlocal max_air
            interval = now - self._last_update_ms
            self._last_update_ms = now
            for index, (disk, model) in enumerate(zip(self.disks, self.thermal)):
                busy = disk.stats.busy_ms
                delta = busy - self._busy_snapshots[index]
                self._busy_snapshots[index] = busy
                duty = min(delta / interval, 1.0) if interval > 0 else 0.0
                model.set_vcm_duty(duty)
                model.network.step(interval / 1000.0)
                max_air = max(max_air, model.air_c())
            if len(events) > 1 or self.system.array.in_flight() > 0:
                events.schedule_after(thermal_interval_ms, thermal_tick)

        events.schedule_after(self.switch_period_ms, switch)
        events.schedule_after(thermal_interval_ms, thermal_tick)
        events.run()

        elapsed = events.now_ms
        duties = [
            min(d.stats.seek_ms / elapsed, 1.0) if elapsed > 0 else 0.0
            for d in self.disks
        ]
        return MirrorReport(
            stats=self.system.stats,
            max_air_c=max_air,
            switches=self.switches,
            per_disk_seek_duty=duties,
            simulated_ms=elapsed,
        )


def mirror_headroom_rpm(
    diameter_in: float = 2.6,
    platters: int = 1,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    calibration: Optional[ThermalCalibration] = None,
) -> float:
    """Max RPM of a mirror whose VCM duty is halved by alternation.

    With reads alternating, each mirror seeks at most half the time; the
    steady VCM heat halves, unlocking RPM between the envelope design
    (duty 1.0) and the full slack design (duty 0.0).
    """
    def air_at(rpm: float) -> float:
        model = DriveThermalModel(
            platter_diameter_in=diameter_in,
            platter_count=platters,
            rpm=rpm,
            ambient_c=ambient_c,
            vcm_active=True,
            calibration=calibration,
        )
        model.set_vcm_duty(0.5)
        return model.steady_state()["air"]

    low, high = 5000.0, 500000.0
    if air_at(low) > envelope_c:
        raise DTMError("design exceeds the envelope even at the bracket floor")
    while high - low > 1.0:
        mid = 0.5 * (low + high)
        if air_at(mid) <= envelope_c:
            low = mid
        else:
            high = mid
    return low
