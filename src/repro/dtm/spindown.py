"""Spin-down power management (related work, paper §2).

The paper situates DTM against the classic disk power-management line:
spinning the platters down during idle periods (Douglis & Krishnan [11],
Lu et al. [32]) and MAID-style mostly-idle archives (Colarelli & Grunwald
[10]).  This module provides that machinery — power states, idle-timeout
policies, and spin-up penalties — integrated with the same thermal and
energy models, so the classic energy/performance trade-off can be compared
against DTM on the same substrate.

States: ACTIVE (serving), IDLE (spinning, heads parked), STANDBY (spun
down — no windage or spindle loss, but the next request pays a multi-
second spin-up).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.errors import DTMError
from repro.simulation.disk import SimulatedDisk
from repro.simulation.request import Request
from repro.simulation.statistics import ResponseTimeStats
from repro.thermal.model import DEFAULT_CALIBRATION, ThermalCalibration
from repro.thermal.vcm import vcm_power_w
from repro.thermal.viscous import viscous_power_w
from repro.workloads.trace import Trace


class PowerState(Enum):
    """Spindle power states."""

    ACTIVE = "active"
    IDLE = "idle"
    STANDBY = "standby"


@dataclass(frozen=True)
class SpinPolicy:
    """Fixed-timeout spin-down policy.

    Attributes:
        idle_timeout_ms: idle time after which the spindle spins down;
            None disables spin-down (always-on, the server default the
            paper's drives use).
        spin_up_ms: time to return from STANDBY to ACTIVE (server drives:
            several seconds).
        spin_up_energy_j: extra energy burned by a spin-up.
    """

    idle_timeout_ms: Optional[float] = None
    spin_up_ms: float = 6000.0
    spin_up_energy_j: float = 30.0

    def __post_init__(self) -> None:
        if self.idle_timeout_ms is not None and self.idle_timeout_ms < 0:
            raise DTMError("idle timeout cannot be negative")
        if self.spin_up_ms < 0 or self.spin_up_energy_j < 0:
            raise DTMError("spin-up costs cannot be negative")


@dataclass
class SpinReport:
    """Outcome of a spin-managed replay.

    Attributes:
        stats: response times (spin-up waits included).
        spin_ups: number of spin-up events.
        standby_ms: total time spent spun down.
        active_idle_ms: total spinning time (serving + idle).
        energy_j: total spindle + windage + VCM energy, including spin-up
            costs.
        simulated_ms: simulated duration.
    """

    stats: ResponseTimeStats
    spin_ups: int
    standby_ms: float
    active_idle_ms: float
    energy_j: float
    simulated_ms: float

    @property
    def standby_fraction(self) -> float:
        if self.simulated_ms <= 0:
            return 0.0
        return min(self.standby_ms / self.simulated_ms, 1.0)


class SpinManagedDisk:
    """One disk under a fixed-timeout spin-down policy.

    Wraps a :class:`SimulatedDisk`: requests arriving in STANDBY wait for
    the spin-up; an idle timer (re-armed at each completion) triggers the
    spin-down.  Energy is integrated per state.

    Args:
        disk: the underlying simulated disk.
        policy: the spin-down policy.
        diameter_in / platter_count: drive geometry for the energy model.
        calibration: supplies the spindle loss.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        policy: SpinPolicy,
        diameter_in: float = 2.6,
        platter_count: int = 1,
        calibration: ThermalCalibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.disk = disk
        self.policy = policy
        self.diameter_in = diameter_in
        self.platter_count = platter_count
        self.calibration = calibration
        self.state = PowerState.IDLE
        self.stats = ResponseTimeStats()
        self.spin_ups = 0
        self.standby_ms = 0.0
        self._energy_j = 0.0
        self._last_transition_ms = 0.0
        self._outstanding = 0
        self._waiting: List[Request] = []
        self._spin_up_done_ms: Optional[float] = None
        self._idle_timer_deadline: Optional[float] = None
        disk.on_complete = self._completed

    # -- energy integration ---------------------------------------------------------

    def _spinning_power_w(self) -> float:
        return (
            viscous_power_w(self.disk.rpm, self.diameter_in, self.platter_count)
            + self.calibration.spm_power_w
        )

    def _account_interval(self, now: float) -> None:
        interval_s = max(now - self._last_transition_ms, 0.0) / 1000.0
        if self.state != PowerState.STANDBY:
            self._energy_j += self._spinning_power_w() * interval_s
        else:
            self.standby_ms += now - self._last_transition_ms
        self._last_transition_ms = now

    def _enter(self, state: PowerState, now: float) -> None:
        self._account_interval(now)
        self.state = state

    # -- request path ------------------------------------------------------------------

    def submit(self, request: Request) -> None:
        now = self.disk.events.now_ms
        self._idle_timer_deadline = None  # any arrival cancels the timer
        if self.state == PowerState.STANDBY:
            self._waiting.append(request)
            if self._spin_up_done_ms is None:
                self.spin_ups += 1
                self._energy_j += self.policy.spin_up_energy_j
                self._spin_up_done_ms = now + self.policy.spin_up_ms
                self.disk.events.schedule(
                    self._spin_up_done_ms, lambda t: self._spun_up(t)
                )
            return
        self._enter(PowerState.ACTIVE, now)
        self._outstanding += 1
        self.disk.submit(request)

    def _spun_up(self, now: float) -> None:
        self._enter(PowerState.ACTIVE, now)
        self._spin_up_done_ms = None
        waiting, self._waiting = self._waiting, []
        for request in waiting:
            self._outstanding += 1
            self.disk.submit(request)

    def _completed(self, request: Request, now: float) -> None:
        self.stats.add(request.response_time_ms)
        self._outstanding -= 1
        if self._outstanding == 0:
            self._enter(PowerState.IDLE, now)
            if self.policy.idle_timeout_ms is not None:
                deadline = now + self.policy.idle_timeout_ms
                self._idle_timer_deadline = deadline
                self.disk.events.schedule(deadline, lambda t: self._idle_timeout(t))

    def _idle_timeout(self, now: float) -> None:
        # Stale timers (re-armed or cancelled by later activity) are no-ops.
        if self._idle_timer_deadline != now or self.state != PowerState.IDLE:
            return
        self._idle_timer_deadline = None
        self._enter(PowerState.STANDBY, now)

    # -- replay ---------------------------------------------------------------------------

    def run_trace(self, trace: Trace) -> SpinReport:
        """Replay a trace through the spin-managed disk."""
        events = self.disk.events
        for record in trace:
            request = Request(
                arrival_ms=record.time_ms,
                lba=record.lba,
                sectors=record.sectors,
                is_write=record.is_write,
            )
            events.schedule(record.time_ms, lambda t, r=request: self.submit(r))
        events.run()
        now = events.now_ms
        self._account_interval(now)
        # VCM energy accrues only while seeking.
        self._energy_j += vcm_power_w(self.diameter_in) * self.disk.stats.seek_ms / 1000.0
        return SpinReport(
            stats=self.stats,
            spin_ups=self.spin_ups,
            standby_ms=self.standby_ms,
            active_idle_ms=now - self.standby_ms,
            energy_j=self._energy_j,
            simulated_ms=now,
        )
