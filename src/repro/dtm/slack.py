"""Exploiting thermal slack (paper §5.2).

The envelope is defined with the VCM continuously on (worst case).  During
idle or sequential phases the VCM is off and the drive runs cooler — a
*thermal slack* a multi-speed disk can spend by temporarily spinning faster
than the envelope-design RPM.  This module quantifies that slack: the
VCM-off maximum RPM per platter size (Figure 5a) and the revised IDR
roadmap it enables (Figure 5b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.constants import (
    AMBIENT_TEMPERATURE_C,
    ROADMAP_FIRST_YEAR,
    ROADMAP_LAST_YEAR,
    ROADMAP_PLATTER_SIZES_IN,
    ROADMAP_ZONES,
    THERMAL_ENVELOPE_C,
)
from repro.scaling.roadmap import RoadmapPoint, thermal_roadmap
from repro.scaling.trends import PAPER_TRENDS, TechnologyTrends
from repro.thermal.envelope import max_rpm_within_envelope
from repro.thermal.model import ThermalCalibration
from repro.thermal.vcm import vcm_power_w

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class SlackPoint:
    """Envelope-design vs slack-exploiting RPM for one platter size.

    Attributes:
        diameter_in: platter size.
        platter_count: platters in the stack.
        envelope_rpm: max RPM with the VCM assumed always on.
        vcm_off_rpm: max RPM attainable while the VCM is off.
        vcm_power_w: the VCM power whose removal creates the slack.
    """

    diameter_in: float
    platter_count: int
    envelope_rpm: float
    vcm_off_rpm: float
    vcm_power_w: float

    @property
    def rpm_gain(self) -> float:
        """Extra RPM unlocked by the slack."""
        return self.vcm_off_rpm - self.envelope_rpm

    @property
    def rpm_gain_fraction(self) -> float:
        """Relative RPM (= IDR) gain from exploiting the slack."""
        return self.rpm_gain / self.envelope_rpm


def slack_by_platter_size(
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    platter_count: int = 1,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    calibration: Optional[ThermalCalibration] = None,
    telemetry: Optional["Telemetry"] = None,
) -> List[SlackPoint]:
    """Figure 5(a): maximum RPM with and without the VCM, per platter size.

    The slack shrinks with the platter because VCM power falls steeply with
    size (3.9 W at 2.6 in vs 0.618 W at 1.6 in).

    With ``telemetry``, each computed point is exported as a pair of
    ``slack.<size>in.*`` gauges and one ``dtm_check`` trace event, so a
    slack study shows up in the same exporters as a simulated run.
    """
    from repro.telemetry import maybe

    tel = maybe(telemetry)
    points: List[SlackPoint] = []
    for diameter in sizes:
        envelope_rpm = max_rpm_within_envelope(
            diameter,
            platter_count=platter_count,
            envelope_c=envelope_c,
            ambient_c=ambient_c,
            vcm_active=True,
            calibration=calibration,
        )
        off_rpm = max_rpm_within_envelope(
            diameter,
            platter_count=platter_count,
            envelope_c=envelope_c,
            ambient_c=ambient_c,
            vcm_active=False,
            calibration=calibration,
        )
        point = SlackPoint(
            diameter_in=diameter,
            platter_count=platter_count,
            envelope_rpm=envelope_rpm,
            vcm_off_rpm=off_rpm,
            vcm_power_w=vcm_power_w(diameter),
        )
        if tel is not None:
            prefix = f"slack.{diameter}in"
            tel.set_gauge(f"{prefix}.envelope_rpm", envelope_rpm)
            tel.set_gauge(f"{prefix}.vcm_off_rpm", off_rpm)
            tel.record(
                0.0,
                "dtm_check",
                "slack",
                diameter_in=diameter,
                envelope_rpm=envelope_rpm,
                vcm_off_rpm=off_rpm,
                rpm_gain=point.rpm_gain,
            )
        points.append(point)
    return points


@dataclass(frozen=True)
class SlackRoadmap:
    """Figure 5(b): the roadmap with and without slack exploitation.

    Attributes:
        envelope_design: per-year points with the VCM assumed always on.
        vcm_off: per-year points at the VCM-off (slack) RPM.
    """

    envelope_design: List[RoadmapPoint]
    vcm_off: List[RoadmapPoint]

    def idr_gain_fraction(self, year: int, diameter_in: float) -> float:
        """Relative IDR gain from slack for one (year, size)."""

        def find(points: List[RoadmapPoint]) -> RoadmapPoint:
            for point in points:
                if point.year == year and point.diameter_in == diameter_in:
                    return point
            raise KeyError((year, diameter_in))

        base = find(self.envelope_design)
        slack = find(self.vcm_off)
        return (slack.max_idr_mb_s - base.max_idr_mb_s) / base.max_idr_mb_s


def slack_roadmap(
    trends: TechnologyTrends = PAPER_TRENDS,
    years: Sequence[int] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1)),
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    platter_count: int = 1,
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    calibration: Optional[ThermalCalibration] = None,
) -> SlackRoadmap:
    """Figure 5(b): revised IDR roadmap when the slack is exploited."""
    common = dict(
        trends=trends,
        years=years,
        sizes=sizes,
        platter_count=platter_count,
        zone_count=zone_count,
        envelope_c=envelope_c,
        ambient_c=ambient_c,
        calibration=calibration,
    )
    return SlackRoadmap(
        envelope_design=thermal_roadmap(vcm_active=True, **common),
        vcm_off=thermal_roadmap(vcm_active=False, **common),
    )
