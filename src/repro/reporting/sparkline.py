"""ASCII sparklines for probe time series.

A sparkline compresses a series into one line of block characters —
enough to eyeball a thermal transient or a queue-depth burst directly in
terminal output (``repro trace``) without a graphics stack.  Pure ASCII
fallback (``-_=#``-style ramp) is available for environments where the
Unicode blocks render poorly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.telemetry.probes import ProbeSet

#: Eight-level Unicode block ramp.
BLOCKS = "▁▂▃▄▅▆▇█"
#: Pure-ASCII fallback ramp.
ASCII_RAMP = " .:-=+*#"


def sparkline(
    values: Sequence[float],
    width: int = 60,
    ascii_only: bool = False,
) -> str:
    """Render a series as one line of block characters.

    Series longer than ``width`` are decimated by bucket-averaging (each
    output column is the mean of its bucket), which preserves the shape
    of slow transients better than naive striding.

    Args:
        values: the series (empty → empty string).
        width: maximum output width in characters.
        ascii_only: use the ASCII ramp instead of Unicode blocks.
    """
    if not values:
        return ""
    ramp = ASCII_RAMP if ascii_only else BLOCKS
    data = _decimate(list(values), width)
    lo, hi = min(data), max(data)
    span = hi - lo
    if span <= 0:
        # Flat series: draw at mid-ramp so it is visibly present.
        return ramp[len(ramp) // 2] * len(data)
    top = len(ramp) - 1
    return "".join(ramp[int((v - lo) / span * top + 0.5)] for v in data)


def _decimate(values: List[float], width: int) -> List[float]:
    if len(values) <= width:
        return values
    out: List[float] = []
    n = len(values)
    for col in range(width):
        start = col * n // width
        end = max((col + 1) * n // width, start + 1)
        bucket = values[start:end]
        out.append(sum(bucket) / len(bucket))
    return out


def render_series(
    name: str,
    values: Sequence[float],
    unit: str = "",
    width: int = 60,
    ascii_only: bool = False,
) -> str:
    """One labelled sparkline row: name, range annotation, line."""
    line = sparkline(values, width=width, ascii_only=ascii_only)
    if not values:
        return f"{name:<28} (no samples)"
    lo, hi = min(values), max(values)
    last = values[-1]
    suffix = f" {unit}" if unit else ""
    return (
        f"{name:<28} {line}  "
        f"[{lo:.3g}..{hi:.3g}{suffix}, last {last:.3g}]"
    )


def render_probe_sparklines(
    probes: "ProbeSet",
    width: int = 60,
    ascii_only: bool = False,
    names: Optional[Sequence[str]] = None,
) -> str:
    """Sparkline panel for a probe set, one row per probe.

    Args:
        probes: the probe set to render.
        width: sparkline width.
        ascii_only: use the ASCII ramp.
        names: restrict (and order) the probes shown; default all sorted.
    """
    selected: List[Tuple[str, List[float], str]]
    if names is None:
        selected = [
            (p.name, p.values(), p.unit)
            for p in sorted(probes.probes(), key=lambda p: p.name)
        ]
    else:
        selected = [
            (name, probes.probe(name).values(), probes.probe(name).unit)
            for name in names
        ]
    rows = [
        render_series(name, values, unit=unit, width=width, ascii_only=ascii_only)
        for name, values, unit in selected
    ]
    return "\n".join(rows)
