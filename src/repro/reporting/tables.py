"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render a cell: floats at fixed precision, everything else via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    indent: str = "",
) -> str:
    """Format an aligned monospace table.

    Args:
        headers: column titles.
        rows: row cells; each row must match the header count.
        precision: decimal places for float cells.
        indent: prefix prepended to each line.

    Returns:
        The table as a newline-joined string (no trailing newline).
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = [format_cell(cell, precision) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(headers)} columns"
            )
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        lines.append(indent + line)
        if index == 0:
            lines.append(indent + "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_comparison(
    label: str, ours: float, paper: float, precision: int = 2
) -> str:
    """One-line ours-vs-paper comparison with the relative deviation."""
    if paper == 0:
        return f"{label}: ours={ours:.{precision}f} paper={paper:.{precision}f}"
    deviation = (ours - paper) / abs(paper) * 100.0
    return (
        f"{label}: ours={ours:.{precision}f} paper={paper:.{precision}f} "
        f"({deviation:+.1f}%)"
    )
