"""Reporting helpers for the benchmark harness and telemetry exporters."""

from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.sparkline import render_probe_sparklines, render_series, sparkline
from repro.reporting.tables import format_cell, format_comparison, format_table
from repro.reporting.telemetry_export import (
    escape_label_value,
    format_label_set,
    format_sample,
    parse_label_set,
    parse_probes_csv,
    parse_prometheus_text,
    probes_to_csv,
    registry_to_prometheus,
    to_json,
    unescape_label_value,
)

__all__ = [
    "ascii_plot",
    "format_cell",
    "format_comparison",
    "format_table",
    "sparkline",
    "render_series",
    "render_probe_sparklines",
    "to_json",
    "probes_to_csv",
    "parse_probes_csv",
    "registry_to_prometheus",
    "parse_prometheus_text",
    "escape_label_value",
    "unescape_label_value",
    "format_label_set",
    "format_sample",
    "parse_label_set",
]
