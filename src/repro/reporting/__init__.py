"""Reporting helpers for the benchmark harness."""

from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.tables import format_cell, format_comparison, format_table

__all__ = ["ascii_plot", "format_cell", "format_comparison", "format_table"]
