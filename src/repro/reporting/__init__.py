"""Reporting helpers for the benchmark harness and telemetry exporters."""

from repro.reporting.ascii_plot import ascii_plot
from repro.reporting.sparkline import render_probe_sparklines, render_series, sparkline
from repro.reporting.tables import format_cell, format_comparison, format_table
from repro.reporting.telemetry_export import (
    parse_probes_csv,
    parse_prometheus_text,
    probes_to_csv,
    registry_to_prometheus,
    to_json,
)

__all__ = [
    "ascii_plot",
    "format_cell",
    "format_comparison",
    "format_table",
    "sparkline",
    "render_series",
    "render_probe_sparklines",
    "to_json",
    "probes_to_csv",
    "parse_probes_csv",
    "registry_to_prometheus",
    "parse_prometheus_text",
]
