"""Telemetry exporters: JSON, CSV and Prometheus text exposition.

Three formats, three audiences:

* **JSON** — the machine-readable artifact CI archives and the
  ``--telemetry`` CLI flags emit; a single document holding the metric
  snapshot, the (possibly truncated) event trace and every probe series.
* **CSV** — the probe time series in long form
  (``time_ms,probe,value``), trivially loadable into pandas/gnuplot.
* **Prometheus text** — the metric snapshot in the text exposition
  format (``# HELP`` / ``# TYPE`` + samples), so a scrape endpoint or a
  textfile collector can ship simulator metrics to a real monitoring
  stack.  :func:`parse_prometheus_text` parses the emitted subset back,
  which the round-trip tests (and any consumer debugging a scrape) use.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.telemetry import Telemetry
    from repro.telemetry.probes import ProbeSet
    from repro.telemetry.registry import MetricsRegistry


class ExportError(ReproError):
    """Raised on malformed export/parse input."""


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def to_json(telemetry: "Telemetry", indent: Optional[int] = 2) -> str:
    """The full telemetry snapshot as a JSON document.

    ``allow_nan=False`` backstops :func:`_finite`: a non-finite value that
    ever slips past the scrub fails loudly here instead of emitting the
    ``Infinity``/``NaN`` literals strict JSON parsers reject.
    """
    return json.dumps(
        _finite(telemetry.as_dict()), indent=indent, allow_nan=False
    )


def _finite(obj: object) -> object:
    """Replace non-finite floats (a never-observed histogram's
    ``min``/``max``, +Inf bucket bounds) with ``null`` so the document
    parses everywhere."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: _finite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_finite(v) for v in obj]
    return obj


# ---------------------------------------------------------------------------
# CSV (probe time series, long form)
# ---------------------------------------------------------------------------

CSV_HEADER = "time_ms,probe,value"


def probes_to_csv(probes: "ProbeSet") -> str:
    """Every probe series in long form: ``time_ms,probe,value``.

    Rows are ordered by probe name, then sample time — deterministic, so
    artifacts diff cleanly between runs of the same seed.
    """
    lines = [CSV_HEADER]
    for probe in sorted(probes.probes(), key=lambda p: p.name):
        for t_ms, value in probe.series:
            lines.append(f"{t_ms:.6g},{probe.name},{value:.10g}")
    return "\n".join(lines) + "\n"


def parse_probes_csv(text: str) -> Dict[str, List[Tuple[float, float]]]:
    """Parse :func:`probes_to_csv` output back to {probe: [(t, v), ...]}."""
    lines = [line for line in text.strip().splitlines() if line]
    if not lines or lines[0] != CSV_HEADER:
        raise ExportError(f"expected header {CSV_HEADER!r}")
    out: Dict[str, List[Tuple[float, float]]] = {}
    for line in lines[1:]:
        parts = line.split(",")
        if len(parts) != 3:
            raise ExportError(f"malformed CSV row: {line!r}")
        t_text, name, v_text = parts
        out.setdefault(name, []).append((float(t_text), float(v_text)))
    return out


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: Prefix applied to every exported metric name.
PROM_NAMESPACE = "repro"


def _prom_name(name: str) -> str:
    """Sanitize a registry name into a Prometheus metric name."""
    safe = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    return f"{PROM_NAMESPACE}_{safe}"


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def registry_to_prometheus(registry: "MetricsRegistry") -> str:
    """The metric snapshot in the Prometheus text exposition format.

    Counters gain a ``_total`` suffix if they lack one; histograms expand
    to the ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le``
    labels; timers export as ``<name>_seconds`` counters.
    """
    from repro.telemetry.registry import Counter, Gauge, Histogram, Timer

    lines: List[str] = []
    for metric in sorted(registry, key=lambda m: m.name):  # type: ignore[attr-defined]
        if isinstance(metric, Counter):
            name = _prom_name(metric.name)
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            name = _prom_name(metric.name)
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif isinstance(metric, Timer):
            name = _prom_name(metric.name) + "_seconds"
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(metric.elapsed_s)}")
        elif isinstance(metric, Histogram):
            name = _prom_name(metric.name)
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cum in metric.cumulative():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {cum}'
                )
            lines.append(f"{name}_sum {_prom_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse the subset of the exposition format this module emits.

    Returns:
        {metric_name: {"type": ..., "samples": {label_suffix: value}}}
        where ``label_suffix`` is ``""`` for plain samples and e.g.
        ``'bucket{le="5.0"}'`` for labelled ones.
    """
    out: Dict[str, Dict[str, object]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            out.setdefault(name, {"type": kind, "samples": {}})
            out[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_text = line.rpartition(" ")
        if not name_part:
            raise ExportError(f"malformed sample line: {line!r}")
        value = float(value_text)
        base, _, label = name_part.partition("{")
        # histogram child series (_bucket/_sum/_count) belong to the parent
        parent = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in out:
                parent = base[: -len(suffix)]
                break
        entry = out.setdefault(parent, {"type": "untyped", "samples": {}})
        key = name_part[len(parent) + 1 :] if parent != name_part else ""
        entry["samples"][key] = value  # type: ignore[index]
    return out
