"""Telemetry exporters: JSON, CSV and Prometheus text exposition.

Three formats, three audiences:

* **JSON** — the machine-readable artifact CI archives and the
  ``--telemetry`` CLI flags emit; a single document holding the metric
  snapshot, the (possibly truncated) event trace and every probe series.
* **CSV** — the probe time series in long form
  (``time_ms,probe,value``), trivially loadable into pandas/gnuplot.
* **Prometheus text** — the metric snapshot in the text exposition
  format (``# HELP`` / ``# TYPE`` + samples), so a scrape endpoint or a
  textfile collector can ship simulator metrics to a real monitoring
  stack.  :func:`parse_prometheus_text` parses the emitted subset back,
  which the round-trip tests (and any consumer debugging a scrape) use.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.telemetry import Telemetry
    from repro.telemetry.probes import ProbeSet
    from repro.telemetry.registry import MetricsRegistry


class ExportError(ReproError):
    """Raised on malformed export/parse input."""


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def to_json(telemetry: "Telemetry", indent: Optional[int] = 2) -> str:
    """The full telemetry snapshot as a JSON document.

    ``allow_nan=False`` backstops :func:`_finite`: a non-finite value that
    ever slips past the scrub fails loudly here instead of emitting the
    ``Infinity``/``NaN`` literals strict JSON parsers reject.
    """
    return json.dumps(
        _finite(telemetry.as_dict()), indent=indent, allow_nan=False
    )


def _finite(obj: object) -> object:
    """Replace non-finite floats (a never-observed histogram's
    ``min``/``max``, +Inf bucket bounds) with ``null`` so the document
    parses everywhere."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: _finite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_finite(v) for v in obj]
    return obj


# ---------------------------------------------------------------------------
# CSV (probe time series, long form)
# ---------------------------------------------------------------------------

CSV_HEADER = "time_ms,probe,value"


def probes_to_csv(probes: "ProbeSet") -> str:
    """Every probe series in long form: ``time_ms,probe,value``.

    Rows are ordered by probe name, then sample time — deterministic, so
    artifacts diff cleanly between runs of the same seed.
    """
    lines = [CSV_HEADER]
    for probe in sorted(probes.probes(), key=lambda p: p.name):
        for t_ms, value in probe.series:
            lines.append(f"{t_ms:.6g},{probe.name},{value:.10g}")
    return "\n".join(lines) + "\n"


def parse_probes_csv(text: str) -> Dict[str, List[Tuple[float, float]]]:
    """Parse :func:`probes_to_csv` output back to {probe: [(t, v), ...]}."""
    lines = [line for line in text.strip().splitlines() if line]
    if not lines or lines[0] != CSV_HEADER:
        raise ExportError(f"expected header {CSV_HEADER!r}")
    out: Dict[str, List[Tuple[float, float]]] = {}
    for line in lines[1:]:
        parts = line.split(",")
        if len(parts) != 3:
            raise ExportError(f"malformed CSV row: {line!r}")
        t_text, name, v_text = parts
        out.setdefault(name, []).append((float(t_text), float(v_text)))
    return out


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: Prefix applied to every exported metric name.
PROM_NAMESPACE = "repro"


def _prom_name(name: str) -> str:
    """Sanitize a registry name into a Prometheus metric name."""
    safe = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    return f"{PROM_NAMESPACE}_{safe}"


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    The spec reserves exactly three characters inside quoted label
    values: backslash, double quote and line feed.  Backslash must be
    doubled first, or the other two replacements would corrupt it.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label_value(text: str) -> str:
    """Invert :func:`escape_label_value` (left-to-right scan, so the
    escaped-backslash-then-n sequence ``\\\\n`` stays a backslash plus
    ``n`` rather than collapsing to a newline)."""
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def format_label_set(labels: Optional[Dict[str, str]]) -> str:
    """Render a label dict as ``{a="x",b="y"}`` (empty string when empty).

    Keys are sorted so emitted text is deterministic; values are escaped
    per :func:`escape_label_value`.
    """
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def format_sample(name: str, labels: Optional[Dict[str, str]], value: float) -> str:
    """One exposition sample line: ``name{labels} value``."""
    return f"{name}{format_label_set(labels)} {_prom_value(float(value))}"


def parse_label_set(text: str) -> Dict[str, str]:
    """Parse a ``{a="x",b="y"}`` label set back to a dict.

    Accepts the bare brace form, the empty string (no labels) and the
    suffix forms :func:`parse_prometheus_text` produces as sample keys
    (``'bucket{le="5.0"}'`` — anything before the first ``{`` is
    ignored).  Values are unescaped; escaped quotes inside values are
    handled by an explicit scan rather than a split.
    """
    brace = text.find("{")
    if brace < 0:
        # '' (plain sample) or a brace-less child name like 'sum'.
        if "=" not in text:
            return {}
        raise ExportError(f"malformed label set: {text!r}")
    body = text[brace + 1 :]
    if not body.endswith("}"):
        raise ExportError(f"unterminated label set: {text!r}")
    body = body[:-1]
    labels: Dict[str, str] = {}
    i = 0
    n = len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise ExportError(f"malformed label set: {text!r}")
        name = body[i:eq].strip()
        if not name or eq + 1 >= n or body[eq + 1] != '"':
            raise ExportError(f"malformed label set: {text!r}")
        j = eq + 2
        raw: List[str] = []
        while j < n:
            ch = body[j]
            if ch == "\\" and j + 1 < n:
                raw.append(body[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ExportError(f"unterminated label value: {text!r}")
        labels[name] = unescape_label_value("".join(raw))
        i = j + 1
        if i < n:
            if body[i] != ",":
                raise ExportError(f"malformed label set: {text!r}")
            i += 1
    return labels


def registry_to_prometheus(
    registry: "MetricsRegistry", labels: Optional[Dict[str, str]] = None
) -> str:
    """The metric snapshot in the Prometheus text exposition format.

    Counters gain a ``_total`` suffix if they lack one; histograms expand
    to the ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le``
    labels; timers export as ``<name>_seconds`` counters.

    ``labels`` (e.g. an instance identity for a scrape endpoint) is
    attached to every sample; label values are escaped per the
    exposition format, so quotes/backslashes/newlines survive the
    round trip through :func:`parse_prometheus_text` +
    :func:`parse_label_set`.
    """
    from repro.telemetry.registry import Counter, Gauge, Histogram, Timer

    base = format_label_set(labels)
    lines: List[str] = []
    for metric in sorted(registry, key=lambda m: m.name):  # type: ignore[attr-defined]
        if isinstance(metric, Counter):
            name = _prom_name(metric.name)
            if not name.endswith("_total"):
                name += "_total"
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{base} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            name = _prom_name(metric.name)
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{base} {_prom_value(metric.value)}")
        elif isinstance(metric, Timer):
            name = _prom_name(metric.name) + "_seconds"
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{base} {_prom_value(metric.elapsed_s)}")
        elif isinstance(metric, Histogram):
            name = _prom_name(metric.name)
            lines.append(f"# HELP {name} {metric.help or metric.name}")
            lines.append(f"# TYPE {name} histogram")
            for bound, cum in metric.cumulative():
                bucket_labels = dict(labels or {})
                bucket_labels["le"] = _prom_value(bound)
                lines.append(
                    f"{name}_bucket{format_label_set(bucket_labels)} {cum}"
                )
            lines.append(f"{name}_sum{base} {_prom_value(metric.sum)}")
            lines.append(f"{name}_count{base} {metric.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse the subset of the exposition format this module emits.

    Returns:
        {metric_name: {"type": ..., "samples": {label_suffix: value}}}
        where ``label_suffix`` is ``""`` for plain unlabelled samples,
        ``'{workload="tpcc"}'`` for labelled ones and e.g.
        ``'bucket{le="5.0"}'`` for histogram children; feed a suffix to
        :func:`parse_label_set` to recover the label dict.  Escaped
        newlines in label values are literal ``\\n`` on the wire, so
        samples stay one-per-line and the parse is still line-based.
    """
    out: Dict[str, Dict[str, object]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            out.setdefault(name, {"type": kind, "samples": {}})
            out[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_text = line.rpartition(" ")
        if not name_part:
            raise ExportError(f"malformed sample line: {line!r}")
        value = float(value_text)
        base, _, label = name_part.partition("{")
        # histogram child series (_bucket/_sum/_count) belong to the parent
        parent = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in out:
                parent = base[: -len(suffix)]
                break
        entry = out.setdefault(parent, {"type": "untyped", "samples": {}})
        if parent == name_part:
            key = ""
        else:
            key = name_part[len(parent) :]
            # child series keep their relative name ('bucket{le=...}',
            # 'sum'); a labelled parent sample keeps its brace suffix.
            if key.startswith("_"):
                key = key[1:]
        entry["samples"][key] = value  # type: ignore[index]
    return out
