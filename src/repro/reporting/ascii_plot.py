"""Minimal ASCII line plots so benchmark output can show figure shapes
without a graphics stack."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 70,
    height: int = 18,
    logy: bool = False,
    title: str = "",
) -> str:
    """Plot one or more (label, xs, ys) series on a shared character grid.

    Args:
        series: list of (label, xs, ys); each series gets a distinct glyph.
        width: plot width in characters.
        height: plot height in rows.
        logy: plot log10 of y.
        title: optional title line.

    Returns:
        The plot as a newline-joined string.
    """
    if not series:
        raise ValueError("need at least one series")
    glyphs = "*+ox#@%&"
    all_x = [x for _, xs, _ in series for x in xs]
    all_y = [y for _, _, ys in series for y in ys]
    if not all_x:
        raise ValueError("series are empty")
    if logy:
        if any(y <= 0 for y in all_y):
            raise ValueError("log-scale plot requires positive y values")
        transform = math.log10
    else:
        def transform(v: float) -> float:
            return v

    x_lo, x_hi = min(all_x), max(all_x)
    y_values = [transform(y) for y in all_y]
    y_lo, y_hi = min(y_values), max(y_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (label, xs, ys) in enumerate(series):
        glyph = glyphs[index % len(glyphs)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    top_label = f"{(10 ** y_hi if logy else y_hi):.4g}"
    bottom_label = f"{(10 ** y_lo if logy else y_lo):.4g}"
    lines.append(f"{top_label:>10} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{bottom_label:>10} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<.4g}" + " " * max(width - 12, 1) + f"{x_hi:.4g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={label}" for i, (label, _, _) in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
