"""Recording technology abstraction: linear and track densities.

The paper abstracts a recording-technology generation as two numbers: the
linear bit density along a track (BPI, bits-per-inch) and the radial track
density (TPI, tracks-per-inch).  Their product is the areal density, and
their ratio the bit aspect-ratio (BAR), both of which the roadmap reasons
about directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import TERABIT_AREAL_DENSITY
from repro.errors import RecordingError


@dataclass(frozen=True)
class RecordingTechnology:
    """A recording-technology operating point.

    Attributes:
        bpi: linear density in bits-per-inch.
        tpi: track density in tracks-per-inch.
    """

    bpi: float
    tpi: float

    def __post_init__(self) -> None:
        if self.bpi <= 0:
            raise RecordingError(f"BPI must be positive, got {self.bpi}")
        if self.tpi <= 0:
            raise RecordingError(f"TPI must be positive, got {self.tpi}")

    @property
    def areal_density(self) -> float:
        """Areal density in bits per square inch."""
        return self.bpi * self.tpi

    @property
    def bit_aspect_ratio(self) -> float:
        """Bit aspect-ratio BAR = BPI / TPI (around 6-7 circa 2002,
        dropping toward ~3.4 at the terabit point)."""
        return self.bpi / self.tpi

    @property
    def is_terabit(self) -> bool:
        """Whether this point is in the terabit-per-square-inch ECC regime."""
        return self.areal_density >= TERABIT_AREAL_DENSITY

    @classmethod
    def from_kilo_units(cls, kbpi: float, ktpi: float) -> "RecordingTechnology":
        """Build from the KBPI/KTPI units used in datasheets and the paper."""
        return cls(bpi=kbpi * 1000.0, tpi=ktpi * 1000.0)

    def scaled(self, bpi_factor: float, tpi_factor: float) -> "RecordingTechnology":
        """Return a new technology with densities multiplied by the factors."""
        if bpi_factor <= 0 or tpi_factor <= 0:
            raise RecordingError("scaling factors must be positive")
        return RecordingTechnology(bpi=self.bpi * bpi_factor, tpi=self.tpi * tpi_factor)
