"""Embedded-servo storage overhead.

Modern drives embed servo information with each sector instead of dedicating
a whole surface to it.  Following the paper (and the Ottesen & Smith patent
[34] it cites), the modeled servo cost per sector is the Gray-coded track
identifier: ceil(log2(number of cylinders)) bits.  Other servo fields
(write-recovery, position-error-signal bursts) are not modeled, matching the
paper.
"""

from __future__ import annotations

import math

from repro.errors import RecordingError


def servo_bits_per_sector(cylinders: int) -> int:
    """Bits of embedded servo (Gray-coded track id) stored with each sector.

    Args:
        cylinders: number of tracks per surface; must be >= 1.

    Returns:
        ``ceil(log2(cylinders))``, minimum 1 bit.
    """
    if cylinders < 1:
        raise RecordingError(f"cylinders must be >= 1, got {cylinders}")
    if cylinders == 1:
        return 1
    return int(math.ceil(math.log2(cylinders)))


def gray_code(track: int) -> int:
    """Gray code of a track index (adjacent tracks differ in one bit).

    Provided because the servo model is motivated by Gray-coded track ids;
    used by tests to verify the single-bit-difference property that makes
    fast seeks reliable.
    """
    if track < 0:
        raise RecordingError(f"track index must be non-negative, got {track}")
    return track ^ (track >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    if code < 0:
        raise RecordingError(f"gray code must be non-negative, got {code}")
    track = 0
    while code:
        track ^= code
        code >>= 1
    return track
