"""Error-correcting-code storage overhead.

Shrinking bit cells hold fewer magnetic grains, lowering the signal-to-noise
ratio, so drives spend more bits on Reed-Solomon ECC as areal density grows.
Following Wood [49] via the paper: about 10% of capacity (416 bits per
512-byte sector) below 1 Tb/in^2, rising to 35% (1440 bits per sector) in the
terabit regime.
"""

from __future__ import annotations

from repro.capacity.recording import RecordingTechnology
from repro.constants import (
    ECC_BITS_SUBTERABIT,
    ECC_BITS_TERABIT,
    TERABIT_AREAL_DENSITY,
)
from repro.errors import RecordingError


def ecc_bits_per_sector(areal_density: float) -> int:
    """ECC bits charged per 512-byte sector at a given areal density.

    Args:
        areal_density: bits per square inch.

    Returns:
        416 below the terabit threshold, 1440 at or above it (the paper's
        step model; it notes a real transition would be more gradual).
    """
    if areal_density <= 0:
        raise RecordingError(f"areal density must be positive, got {areal_density}")
    if areal_density >= TERABIT_AREAL_DENSITY:
        return ECC_BITS_TERABIT
    return ECC_BITS_SUBTERABIT


def ecc_bits_for_technology(technology: RecordingTechnology) -> int:
    """ECC bits per sector for a recording-technology point."""
    return ecc_bits_per_sector(technology.areal_density)


def ecc_fraction(areal_density: float) -> float:
    """ECC overhead as a fraction of the 4096 data bits in a sector."""
    return ecc_bits_per_sector(areal_density) / 4096.0


def smooth_ecc_bits_per_sector(
    areal_density: float,
    transition_width_decades: float = 0.25,
) -> float:
    """A smoothed ECC model for the ablation study.

    The paper notes the instantaneous 10% -> 35% ECC jump at 1 Tb/in^2 is an
    artifact of the step model and that reality would be gradual.  This
    variant ramps log-linearly across ``transition_width_decades`` decades of
    areal density centered on the threshold.

    Args:
        areal_density: bits per square inch.
        transition_width_decades: width of the ramp in log10 units.
    """
    if areal_density <= 0:
        raise RecordingError(f"areal density must be positive, got {areal_density}")
    if transition_width_decades <= 0:
        return float(ecc_bits_per_sector(areal_density))
    import math

    position = math.log10(areal_density / TERABIT_AREAL_DENSITY)
    half = transition_width_decades / 2.0
    if position <= -half:
        return float(ECC_BITS_SUBTERABIT)
    if position >= half:
        return float(ECC_BITS_TERABIT)
    ramp = (position + half) / transition_width_decades
    return ECC_BITS_SUBTERABIT + ramp * (ECC_BITS_TERABIT - ECC_BITS_SUBTERABIT)
