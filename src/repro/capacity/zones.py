"""Zoned Bit Recording (ZBR) layout.

Outer tracks are longer and can hold more bits, but per-track sector counts
would need per-track channel rates.  ZBR groups tracks into zones; every
track in a zone carries the sector count of the zone's *shortest* (innermost)
track, trading a little capacity for channel simplicity.  Modern drives use
around 30 zones; the paper's roadmap experiments use 50.

This module computes the track layout of one surface: track radii (paper
eq. 1), raw bits per track, the zone partition, and the usable sectors per
track after servo and ECC overheads are charged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import List

from repro.capacity.ecc import ecc_bits_for_technology
from repro.capacity.recording import RecordingTechnology
from repro.capacity.servo import servo_bits_per_sector
from repro.constants import STROKE_EFFICIENCY
from repro.errors import RecordingError
from repro.geometry.platter import Platter
from repro.units import BITS_PER_SECTOR


@dataclass(frozen=True)
class Zone:
    """One ZBR zone on a surface.

    Attributes:
        index: zone number; 0 is the outermost zone.
        first_track: index of the zone's outermost track.
        track_count: number of tracks in the zone.
        min_track_radius_in: radius of the zone's innermost track, inches.
        raw_bits_per_track: raw bit capacity of the innermost track.
        sectors_per_track: usable 512-byte sectors allocated to every track
            in the zone after servo/ECC derating.
    """

    index: int
    first_track: int
    track_count: int
    min_track_radius_in: float
    raw_bits_per_track: float
    sectors_per_track: int

    @property
    def sectors(self) -> int:
        """Total usable sectors in the zone (one surface)."""
        return self.track_count * self.sectors_per_track


class ZonedSurface:
    """ZBR layout of a single recording surface.

    Args:
        platter: platter geometry.
        technology: recording technology (BPI/TPI).
        zone_count: number of ZBR zones.
        stroke_efficiency: fraction of the radial band usable for data
            tracks (default 2/3 per the paper).

    Raises:
        RecordingError: if the configuration yields no usable tracks or the
            zone count exceeds the track count.
    """

    def __init__(
        self,
        platter: Platter,
        technology: RecordingTechnology,
        zone_count: int = 30,
        stroke_efficiency: float = STROKE_EFFICIENCY,
    ) -> None:
        if zone_count < 1:
            raise RecordingError(f"zone count must be >= 1, got {zone_count}")
        if not 0.0 < stroke_efficiency <= 1.0:
            raise RecordingError(
                f"stroke efficiency must be in (0, 1], got {stroke_efficiency}"
            )
        self.platter = platter
        self.technology = technology
        self.zone_count = zone_count
        self.stroke_efficiency = stroke_efficiency

        band = platter.radial_band_in
        self._cylinders = int(stroke_efficiency * band * technology.tpi)
        if self._cylinders < 1:
            raise RecordingError(
                "configuration yields zero tracks: "
                f"band={band:.3f} in, TPI={technology.tpi:.0f}"
            )
        if zone_count > self._cylinders:
            raise RecordingError(
                f"zone count {zone_count} exceeds track count {self._cylinders}"
            )

    # -- track-level geometry ---------------------------------------------------

    @property
    def cylinders(self) -> int:
        """Number of data tracks on the surface (paper: n_cylin)."""
        return self._cylinders

    def track_radius_in(self, track: int) -> float:
        """Radius of track ``track`` in inches (track 0 is outermost).

        Tracks are uniformly spaced between the inner and outer radii
        (paper eq. 1).
        """
        self._check_track(track)
        n = self._cylinders
        if n == 1:
            return self.platter.outer_radius_in
        r_i = self.platter.inner_radius_in
        r_o = self.platter.outer_radius_in
        return r_i + (r_o - r_i) * (n - track - 1) / (n - 1)

    def track_perimeter_in(self, track: int) -> float:
        """Perimeter of a track in inches."""
        return 2.0 * math.pi * self.track_radius_in(track)

    def raw_track_bits(self, track: int) -> float:
        """Raw bit capacity of a track: perimeter times linear density."""
        return self.track_perimeter_in(track) * self.technology.bpi

    def _check_track(self, track: int) -> None:
        if not 0 <= track < self._cylinders:
            raise RecordingError(
                f"track {track} out of range [0, {self._cylinders})"
            )

    # -- overheads ---------------------------------------------------------------

    @cached_property
    def servo_bits(self) -> int:
        """Embedded-servo bits charged per sector."""
        return servo_bits_per_sector(self._cylinders)

    @cached_property
    def ecc_bits(self) -> int:
        """ECC bits charged per sector at this areal density."""
        return ecc_bits_for_technology(self.technology)

    @property
    def overhead_fraction(self) -> float:
        """Fraction of raw track bits consumed by servo + ECC.

        The paper charges ``C_servo + C_ECC`` bits against each 4096-bit
        sector; expressed as a derating fraction of the raw track capacity
        this is ``(servo + ecc) / 4096`` (see DESIGN.md for why this
        accounting reproduces the paper's Table 3 IDR_density column).
        """
        return (self.servo_bits + self.ecc_bits) / BITS_PER_SECTOR

    def usable_track_bits(self, track: int) -> float:
        """Track bits available for user data after servo/ECC derating."""
        return self.raw_track_bits(track) * (1.0 - self.overhead_fraction)

    # -- zones --------------------------------------------------------------------

    @cached_property
    def zones(self) -> List[Zone]:
        """The ZBR zone partition, outermost zone first.

        Tracks are split as evenly as possible; any remainder tracks are
        assigned to the innermost zones (one extra track each) so every track
        belongs to exactly one zone.
        """
        base, remainder = divmod(self._cylinders, self.zone_count)
        zones: List[Zone] = []
        first = 0
        for index in range(self.zone_count):
            count = base + (1 if index >= self.zone_count - remainder else 0)
            innermost = first + count - 1
            raw_min = self.raw_track_bits(innermost)
            usable_min = self.usable_track_bits(innermost)
            sectors = int(usable_min // BITS_PER_SECTOR)
            zones.append(
                Zone(
                    index=index,
                    first_track=first,
                    track_count=count,
                    min_track_radius_in=self.track_radius_in(innermost),
                    raw_bits_per_track=raw_min,
                    sectors_per_track=sectors,
                )
            )
            first += count
        return zones

    def zone_of_track(self, track: int) -> Zone:
        """Zone containing the given track."""
        self._check_track(track)
        for zone in self.zones:
            if zone.first_track <= track < zone.first_track + zone.track_count:
                return zone
        raise RecordingError(f"track {track} not covered by any zone")  # pragma: no cover

    @property
    def sectors_per_track_zone0(self) -> int:
        """Sectors per track in the outermost zone (paper's n_tz0, sets IDR)."""
        return self.zones[0].sectors_per_track

    @cached_property
    def sectors_per_surface(self) -> int:
        """Total usable sectors on one surface."""
        return sum(zone.sectors for zone in self.zones)

    def raw_bits_per_surface(self) -> float:
        """Raw (pre-ZBR, pre-overhead) bits on the recordable annulus.

        This is the per-surface term of the paper's C_max formula:
        ``eta * pi * (r_o^2 - r_i^2) * BPI * TPI``.
        """
        return (
            self.stroke_efficiency
            * self.platter.annulus_area_in2()
            * self.technology.areal_density
        )
