"""Capacity model: recording densities, ZBR zoning, servo and ECC overheads."""

from repro.capacity.ecc import (
    ecc_bits_for_technology,
    ecc_bits_per_sector,
    ecc_fraction,
    smooth_ecc_bits_per_sector,
)
from repro.capacity.model import CapacityBreakdown, CapacityModel
from repro.capacity.recording import RecordingTechnology
from repro.capacity.servo import gray_code, gray_decode, servo_bits_per_sector
from repro.capacity.zones import Zone, ZonedSurface

__all__ = [
    "CapacityBreakdown",
    "CapacityModel",
    "RecordingTechnology",
    "Zone",
    "ZonedSurface",
    "ecc_bits_for_technology",
    "ecc_bits_per_sector",
    "ecc_fraction",
    "smooth_ecc_bits_per_sector",
    "gray_code",
    "gray_decode",
    "servo_bits_per_sector",
]
