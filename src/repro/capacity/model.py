"""Derated drive capacity (paper §3.1).

Combines the ZBR surface layout with the surface count to produce raw and
usable capacities, mirroring the paper's C_max and C_actual.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.capacity.recording import RecordingTechnology
from repro.capacity.zones import ZonedSurface
from repro.constants import STROKE_EFFICIENCY
from repro.errors import RecordingError
from repro.geometry.platter import Platter
from repro.units import BYTES_PER_SECTOR, GB_MARKETING, GIB, sectors_to_gb


@dataclass(frozen=True)
class CapacityBreakdown:
    """Where the raw bits went.

    Attributes:
        raw_gb: eta-derated raw media capacity (paper C_max), decimal GB.
        after_zbr_gb: capacity after ZBR rounding, before per-sector
            overheads, decimal GB.
        usable_gb: final user capacity (paper C_actual), decimal GB.
        zbr_loss_gb: capacity lost to per-zone sector-count rounding.
        overhead_loss_gb: capacity spent on servo + ECC.
    """

    raw_gb: float
    after_zbr_gb: float
    usable_gb: float

    @property
    def zbr_loss_gb(self) -> float:
        return self.raw_gb - self.after_zbr_gb

    @property
    def overhead_loss_gb(self) -> float:
        return self.after_zbr_gb - self.usable_gb


class CapacityModel:
    """Capacity model of a drive: platters x surfaces x ZBR layout.

    Args:
        platter: platter geometry.
        technology: recording technology.
        platter_count: number of platters (two surfaces each).
        zone_count: ZBR zones per surface.
        stroke_efficiency: usable fraction of the radial band.
    """

    def __init__(
        self,
        platter: Platter,
        technology: RecordingTechnology,
        platter_count: int = 1,
        zone_count: int = 30,
        stroke_efficiency: float = STROKE_EFFICIENCY,
    ) -> None:
        if platter_count < 1:
            raise RecordingError(f"platter count must be >= 1, got {platter_count}")
        self.platter = platter
        self.technology = technology
        self.platter_count = platter_count
        self.surface = ZonedSurface(
            platter=platter,
            technology=technology,
            zone_count=zone_count,
            stroke_efficiency=stroke_efficiency,
        )

    @property
    def surfaces(self) -> int:
        """Recording surfaces (paper n_surf = 2 x platters)."""
        return 2 * self.platter_count

    # -- capacities ---------------------------------------------------------------

    def raw_capacity_bits(self) -> float:
        """Paper C_max: raw recordable bits across all surfaces."""
        return self.surfaces * self.surface.raw_bits_per_surface()

    def raw_capacity_gb(self) -> float:
        """Paper C_max in decimal gigabytes."""
        return self.raw_capacity_bits() / 8.0 / GB_MARKETING

    @cached_property
    def usable_sectors(self) -> int:
        """Total user-visible 512-byte sectors (paper C_actual)."""
        return self.surfaces * self.surface.sectors_per_surface

    def usable_capacity_gb(self) -> float:
        """Paper C_actual in decimal gigabytes."""
        return sectors_to_gb(self.usable_sectors)

    def usable_capacity_gib(self) -> float:
        """Paper C_actual in binary gigabytes (2**30 bytes).

        The paper's "Model Cap." column in Table 1 is in binary units (its
        values are a constant 0.9313 ratio below the decimal computation);
        use this accessor when comparing against the paper's own numbers.
        """
        return self.usable_sectors * BYTES_PER_SECTOR / GIB

    def breakdown(self) -> CapacityBreakdown:
        """Account for every raw bit: ZBR rounding vs servo/ECC overhead."""
        raw_gb = self.raw_capacity_gb()
        zbr_raw_bits = self.surfaces * sum(
            zone.track_count * zone.raw_bits_per_track for zone in self.surface.zones
        )
        after_zbr_gb = zbr_raw_bits / 8.0 / GB_MARKETING
        return CapacityBreakdown(
            raw_gb=raw_gb,
            after_zbr_gb=after_zbr_gb,
            usable_gb=self.usable_capacity_gb(),
        )

    def usable_capacity_bytes(self) -> int:
        """User capacity in bytes."""
        return self.usable_sectors * BYTES_PER_SECTOR
