"""Search-Engine workload (UMass trace repository [47], "Websearch").

A 1999 web search engine trace over 6 independent 19 GB, 10K RPM spindles.
Almost purely random reads of index pages at high rate — the canonical
random-read server workload; its 16 ms baseline mean response drops ~34%
with +5K RPM in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workloads.synthetic import WorkloadShape

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.workloads.catalog import WorkloadSpec

SHAPE = WorkloadShape(
    name="search_engine",
    mean_interarrival_ms=2.15,
    burstiness=3.5,
    read_fraction=0.99,
    size_mix=((8, 0.45), (16, 0.40), (32, 0.15)),
    sequential_fraction=0.05,
    stream_count=4,
    hot_fraction=0.45,
    hot_region_fraction=0.15,
)


def _spec() -> WorkloadSpec:
    from repro.workloads.catalog import WorkloadSpec

    return WorkloadSpec(
        name="search_engine",
        display_name="Search-Engine",
        year=1999,
        disk_count=6,
        base_rpm=10000.0,
        disk_capacity_gb=19.07,
        raid5=False,
        shape=SHAPE,
        kbpi=350.0,
        ktpi=20.0,
        platters=4,
    )


SPEC = _spec()
