"""TPC-H workload.

Collected in 2002 on an 8-way IBM Netfinity SMP running DB2 on Linux, over
15 independent 36 GB, 7,200 RPM disks.  Decision-support scans: large,
highly sequential reads where the on-disk read-ahead cache absorbs much of
the traffic; the paper's baseline 4.9 ms mean improves ~34% with +5K RPM
(the sweep there runs 7.2K -> 12.2K -> 17.2K -> 22.2K).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workloads.synthetic import WorkloadShape

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.workloads.catalog import WorkloadSpec

SHAPE = WorkloadShape(
    name="tpch",
    mean_interarrival_ms=2.2,
    burstiness=1.5,
    read_fraction=0.97,
    size_mix=((32, 0.25), (64, 0.45), (128, 0.30)),
    sequential_fraction=0.85,
    stream_count=10,
    hot_fraction=0.20,
    hot_region_fraction=0.25,
)


def _spec() -> WorkloadSpec:
    from repro.workloads.catalog import WorkloadSpec

    return WorkloadSpec(
        name="tpch",
        display_name="TPC-H",
        year=2002,
        disk_count=15,
        base_rpm=7200.0,
        disk_capacity_gb=35.96,
        raid5=False,
        shape=SHAPE,
        kbpi=570.0,
        ktpi=64.0,
        platters=2,
    )


SPEC = _spec()
