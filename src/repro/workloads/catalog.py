"""Workload catalog: the five Figure-4 systems and their synthetic traces.

Each entry mirrors a row of the paper's workload table (Figure 4a): the
array configuration (disk count, RPM, per-disk capacity, RAID) and a
synthetic shape standing in for the non-redistributable commercial trace.
Request counts default to a scaled-down population (the paper replays
3-6 million requests; we default to tens of thousands so a pure-Python
sweep finishes in seconds) — statistics are stable well before that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import TraceError
from repro.workloads.synthetic import WorkloadShape, generate_trace
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.faults import FaultConfig
    from repro.simulation.system import StorageSystem
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class WorkloadSpec:
    """One Figure-4 workload: system configuration plus trace shape.

    Attributes:
        name: catalog key.
        display_name: label used in the paper.
        year: approximate trace collection year.
        disk_count: member disks in the array.
        base_rpm: spindle speed of the original system.
        disk_capacity_gb: usable capacity per disk (decimal GB).
        raid5: whether the paper's system used RAID (RAID-5, 16-block
            stripes) — otherwise plain striping across spindles.
        shape: synthetic trace shape calibrated to the trace's published
            summary characteristics.
        kbpi / ktpi / platters / diameter_in: drive-model parameters for
            the "appropriate year" the paper synthesizes disks for.
        default_requests: default trace length.
    """

    name: str
    display_name: str
    year: int
    disk_count: int
    base_rpm: float
    disk_capacity_gb: float
    raid5: bool
    shape: WorkloadShape
    kbpi: float
    ktpi: float
    platters: int
    diameter_in: float = 3.3
    default_requests: int = 20000

    @property
    def stripe_unit_sectors(self) -> int:
        """RAID-5 systems use the paper's 16-block stripes; non-RAID
        systems spread data across independent spindles, modeled as coarse
        (1 MB) striping so a request engages a single disk."""
        return 16 if self.raid5 else 2048

    def build_system(
        self,
        rpm: Optional[float] = None,
        telemetry: Optional["Telemetry"] = None,
        fault_config: Optional["FaultConfig"] = None,
    ) -> "StorageSystem":
        """Instantiate the simulated storage system, optionally at a
        different spindle speed (the Figure 4 RPM sweep), optionally
        instrumented with a telemetry subsystem, and optionally with
        deterministic fault injection on every member disk."""
        from repro.simulation.system import build_system

        return build_system(
            disk_count=self.disk_count,
            rpm=rpm if rpm is not None else self.base_rpm,
            disk_capacity_gb=self.disk_capacity_gb,
            raid5=self.raid5,
            stripe_unit_sectors=self.stripe_unit_sectors,
            diameter_in=self.diameter_in,
            platters=self.platters,
            kbpi=self.kbpi,
            ktpi=self.ktpi,
            telemetry=telemetry,
            fault_config=fault_config,
        )

    def generate(
        self,
        num_requests: Optional[int] = None,
        seed: int = 0,
        rate_scale: float = 1.0,
    ) -> Trace:
        """Generate the synthetic trace, sized to the system's capacity."""
        system = self.build_system()
        capacity = system.array.logical_sectors
        # Exact sentinel check: 1.0 means "caller passed the default", not a
        # computed rate.  # thermolint: disable=TL002
        shape = self.shape if rate_scale == 1.0 else self.shape.scaled_rate(rate_scale)
        return generate_trace(
            shape=shape,
            num_requests=num_requests or self.default_requests,
            capacity_sectors=capacity,
            seed=seed,
        )

    def rpm_sweep(self, steps: int = 4, step_rpm: float = 5000.0) -> tuple:
        """The paper's RPM ladder: base, +5K, +10K, +15K."""
        return tuple(self.base_rpm + i * step_rpm for i in range(steps))

    def with_shape(self, **changes) -> "WorkloadSpec":
        """Copy with shape fields replaced (for sensitivity studies)."""
        return replace(self, shape=replace(self.shape, **changes))


def _specs() -> Dict[str, WorkloadSpec]:
    from repro.workloads import openmail, oltp, search_engine, tpcc, tpch

    entries = [
        openmail.SPEC,
        oltp.SPEC,
        search_engine.SPEC,
        tpcc.SPEC,
        tpch.SPEC,
    ]
    return {spec.name: spec for spec in entries}


_CATALOG: Optional[Dict[str, WorkloadSpec]] = None


def catalog() -> Dict[str, WorkloadSpec]:
    """All five paper workloads, keyed by name."""
    global _CATALOG
    if _CATALOG is None:
        _CATALOG = _specs()
    return _CATALOG


def workload(name: str) -> WorkloadSpec:
    """Look up one workload.

    Raises:
        TraceError: for unknown names.
    """
    specs = catalog()
    try:
        return specs[name]
    except KeyError:
        raise TraceError(
            f"unknown workload {name!r}; known: {sorted(specs)}"
        ) from None
