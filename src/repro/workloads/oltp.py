"""OLTP Application workload (UMass trace repository [47], "Financial").

An online-transaction-processing trace from 1999 running over 24
independent 19 GB, 10K RPM spindles (no RAID).  Small, write-heavy,
strongly localized requests at modest per-disk utilization — the lightest
system of the five, improving ~21% with +5K RPM (rotational latency is a
large share of its short service times).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workloads.synthetic import WorkloadShape

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.workloads.catalog import WorkloadSpec

SHAPE = WorkloadShape(
    name="oltp",
    mean_interarrival_ms=1.2,
    burstiness=1.5,
    read_fraction=0.23,
    size_mix=((4, 0.55), (8, 0.35), (16, 0.10)),
    sequential_fraction=0.10,
    stream_count=6,
    hot_fraction=0.85,
    hot_region_fraction=0.03,
)


def _spec() -> WorkloadSpec:
    from repro.workloads.catalog import WorkloadSpec

    return WorkloadSpec(
        name="oltp",
        display_name="OLTP Application",
        year=1999,
        disk_count=24,
        base_rpm=10000.0,
        disk_capacity_gb=19.07,
        raid5=False,
        shape=SHAPE,
        kbpi=350.0,
        ktpi=20.0,
        platters=4,
    )


SPEC = _spec()
