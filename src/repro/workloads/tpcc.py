"""TPC-C workload.

Collected in 2002 on a 2-way Dell PowerEdge SMP running DB2 on Linux, over
a 4-disk RAID-5 array of 37 GB, 10K RPM disks.  Small random transactions
with a read-biased mix and strong buffer-pool-filtered locality; the paper
reports a 6.5 ms baseline mean halving with +5K RPM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workloads.synthetic import WorkloadShape

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.workloads.catalog import WorkloadSpec

SHAPE = WorkloadShape(
    name="tpcc",
    mean_interarrival_ms=16.0,
    burstiness=2.5,
    read_fraction=0.66,
    size_mix=((4, 0.40), (8, 0.45), (16, 0.15)),
    sequential_fraction=0.12,
    stream_count=4,
    hot_fraction=0.9,
    hot_region_fraction=0.02,
)


def _spec() -> WorkloadSpec:
    from repro.workloads.catalog import WorkloadSpec

    return WorkloadSpec(
        name="tpcc",
        display_name="TPC-C",
        year=2002,
        disk_count=4,
        base_rpm=10000.0,
        disk_capacity_gb=37.17,
        raid5=True,
        shape=SHAPE,
        kbpi=570.0,
        ktpi=64.0,
        platters=2,
    )


SPEC = _spec()
