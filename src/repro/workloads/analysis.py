"""Workload and run analysis.

The paper characterizes its traces by statistics like "an average seek
distance of 1,952 cylinders per request with over 86% of all requests
requiring a movement of the arm" (Openmail, §5.1).  This module computes
the same statistics for any trace replayed through the simulator, so the
synthetic stand-ins can be audited against the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.errors import TraceError
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.simulation.system import StorageSystem
    from repro.workloads.catalog import WorkloadSpec


@dataclass(frozen=True)
class TraceProfile:
    """Static (address-stream) statistics of a trace.

    Attributes:
        requests: number of requests.
        read_fraction: fraction of reads.
        mean_size_kb: mean request size in KB.
        sequential_fraction: fraction of requests starting exactly where a
            previous request (within a small window) ended.
        mean_interarrival_ms: mean gap between arrivals.
        cv2_interarrival: squared coefficient of variation of the gaps
            (1 = Poisson; larger = bursty).
    """

    requests: int
    read_fraction: float
    mean_size_kb: float
    sequential_fraction: float
    mean_interarrival_ms: float
    cv2_interarrival: float


def profile_trace(trace: Trace, window: int = 8) -> TraceProfile:
    """Compute the static profile of a trace.

    Args:
        trace: the trace to profile.
        window: how many recent requests count as "open streams" when
            scoring sequentiality.
    """
    if len(trace) < 2:
        raise TraceError("need at least two requests to profile")
    records = trace.records
    gaps = [b.time_ms - a.time_ms for a, b in zip(records, records[1:])]
    mean_gap = sum(gaps) / len(gaps)
    variance = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
    recent_ends: List[int] = []
    sequential = 0
    for record in records:
        if record.lba in recent_ends:
            sequential += 1
        recent_ends.append(record.lba + record.sectors)
        if len(recent_ends) > window:
            recent_ends.pop(0)
    return TraceProfile(
        requests=len(records),
        read_fraction=1.0 - trace.write_fraction(),
        mean_size_kb=trace.mean_request_sectors() * 0.5,
        sequential_fraction=sequential / len(records),
        mean_interarrival_ms=mean_gap,
        cv2_interarrival=variance / mean_gap**2 if mean_gap > 0 else 0.0,
    )


@dataclass(frozen=True)
class SeekActivity:
    """Arm-movement statistics of a completed simulation run.

    The two numbers the paper quotes for Openmail: the fraction of
    requests that moved the arm, and the mean seek distance per request.

    Attributes:
        arm_movement_fraction: completed requests that required a seek.
        mean_seek_cylinders: mean cylinders moved per completed request
            (zero-distance requests included in the denominator, as in the
            paper's phrasing "per request").
        per_disk_mean_seek: mean seek distance per member disk.
    """

    arm_movement_fraction: float
    mean_seek_cylinders: float
    per_disk_mean_seek: List[float]


def seek_activity(system: "StorageSystem") -> SeekActivity:
    """Extract arm-movement statistics after a run.

    Args:
        system: a storage system whose trace replay has completed.

    Raises:
        TraceError: if no requests completed.
    """
    disks = system.disks
    completed = sum(d.stats.requests_completed for d in disks)
    if completed == 0:
        raise TraceError("no completed requests to analyze")
    moved = sum(d.stats.seeks_with_movement for d in disks)
    total_distance = sum(d.stats.total_seek_cylinders for d in disks)
    return SeekActivity(
        arm_movement_fraction=moved / completed,
        mean_seek_cylinders=total_distance / completed,
        per_disk_mean_seek=[d.stats.mean_seek_distance() for d in disks],
    )


def replay_and_analyze(
    spec: "WorkloadSpec",
    num_requests: int = 4000,
    seed: int = 1,
    rpm: Optional[float] = None,
) -> tuple:
    """Generate, replay and analyze one catalog workload.

    Returns:
        (trace profile, simulation report, seek activity).
    """
    trace = spec.generate(num_requests=num_requests, seed=seed)
    system = spec.build_system(rpm=rpm)
    report = system.run_trace(trace)
    return profile_trace(trace), report, seek_activity(system)


def compare_to_paper_openmail(activity: SeekActivity) -> dict:
    """Score a run against the paper's Openmail characterization.

    Returns a dict with the measured values and the paper's (1,952
    cylinders mean seek, 86% arm movement).
    """
    return {
        "arm_movement_fraction": activity.arm_movement_fraction,
        "paper_arm_movement_fraction": 0.86,
        "mean_seek_cylinders": activity.mean_seek_cylinders,
        "paper_mean_seek_cylinders": 1952.0,
    }
