"""DiskSim ASCII trace interoperability.

The paper drove DiskSim 2.0 with its traces; DiskSim's default ASCII input
format is one request per line::

    <arrival time (s, float)> <device number> <block number> <size (blocks)> <flags>

with flag bit 0 set for reads (1 = read, 0 = write).  This module converts
between that format and :class:`repro.workloads.trace.Trace`, so traces
generated here can be replayed through real DiskSim — and DiskSim-format
traces (including published ones) can be replayed through this simulator.

Multi-device traces are flattened onto the single logical address space by
striping device numbers across it (matching how the catalog's systems
spread data over spindles); use ``device`` to select one device instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.errors import TraceError
from repro.workloads.trace import Trace, TraceRecord

#: DiskSim flag bit: read request.
READ_FLAG = 0x1


def write_disksim(trace: Trace, path: Union[str, Path], device: int = 0) -> None:
    """Write a trace in DiskSim ASCII format.

    Args:
        trace: the trace to export.
        path: destination file.
        device: device number stamped on every request.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in trace:
            flags = READ_FLAG if not record.is_write else 0
            handle.write(
                f"{record.time_ms / 1000.0:.6f} {device} {record.lba} "
                f"{record.sectors} {flags}\n"
            )


def read_disksim(
    path: Union[str, Path],
    name: str = "",
    device: Optional[int] = None,
    sectors_per_device: int = 0,
) -> Trace:
    """Parse a DiskSim ASCII trace.

    Args:
        path: source file.
        name: trace label (defaults to the file stem).
        device: if given, keep only this device's requests; otherwise all
            devices are flattened by offsetting each device's blocks by
            ``sectors_per_device``.
        sectors_per_device: address-space stride for flattening
            multi-device traces (required when ``device`` is None and the
            trace names more than one device).

    Raises:
        TraceError: on malformed lines or inconsistent device handling.
    """
    path = Path(path)
    records: List[TraceRecord] = []
    devices_seen = set()
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 5:
                raise TraceError(
                    f"{path}:{line_number}: expected 5 fields, got {len(parts)}"
                )
            try:
                time_s = float(parts[0])
                dev = int(parts[1])
                block = int(parts[2])
                size = int(parts[3])
                flags = int(parts[4], 0)
            except ValueError as exc:
                raise TraceError(f"{path}:{line_number}: {exc}") from exc
            devices_seen.add(dev)
            if device is not None and dev != device:
                continue
            lba = block
            if device is None and dev > 0:
                if sectors_per_device <= 0:
                    raise TraceError(
                        f"{path}:{line_number}: multi-device trace needs "
                        "sectors_per_device (or pass device=...)"
                    )
                lba = dev * sectors_per_device + block
            records.append(
                TraceRecord(
                    time_ms=time_s * 1000.0,
                    lba=lba,
                    sectors=size,
                    is_write=not (flags & READ_FLAG),
                )
            )
    if not records:
        raise TraceError(f"{path}: no records (devices present: {sorted(devices_seen)})")
    return Trace.from_records(name or path.stem, records)
