"""Workload traces.

A trace is an ordered sequence of timed block-level requests against a
logical address space.  The paper replays vendor traces (HPL Openmail,
UMass OLTP/Websearch, TPC-C/H); those are not redistributable, so this
library generates synthetic equivalents (see the sibling modules) but uses
the same trace abstraction, including a simple line-oriented text format
for saving and sharing traces:

    # comment
    <time_ms> <lba> <sectors> <R|W>
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import TraceError


@dataclass(frozen=True)
class TraceRecord:
    """One request in a trace.

    Attributes:
        time_ms: arrival time (non-decreasing within a trace).
        lba: starting logical block.
        sectors: length in 512-byte sectors.
        is_write: write flag.
    """

    time_ms: float
    lba: int
    sectors: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise TraceError(f"time cannot be negative, got {self.time_ms}")
        if self.lba < 0:
            raise TraceError(f"LBA cannot be negative, got {self.lba}")
        if self.sectors <= 0:
            raise TraceError(f"sectors must be positive, got {self.sectors}")


@dataclass
class Trace:
    """An ordered request trace with a name.

    Attributes:
        name: workload label.
        records: the requests, in non-decreasing time order.
    """

    name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate_order()

    def _validate_order(self) -> None:
        previous = 0.0
        for record in self.records:
            if record.time_ms < previous - 1e-9:
                raise TraceError(
                    f"trace {self.name!r} not time-ordered at t={record.time_ms}"
                )
            previous = record.time_ms

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration_ms(self) -> float:
        """Arrival span of the trace."""
        if not self.records:
            return 0.0
        return self.records[-1].time_ms - self.records[0].time_ms

    def max_lba(self) -> int:
        """Highest sector addressed (exclusive)."""
        if not self.records:
            return 0
        return max(record.lba + record.sectors for record in self.records)

    def write_fraction(self) -> float:
        """Fraction of requests that are writes."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.is_write) / len(self.records)

    def mean_request_sectors(self) -> float:
        """Average request size in sectors."""
        if not self.records:
            return 0.0
        return sum(r.sectors for r in self.records) / len(self.records)

    def arrival_rate_per_s(self) -> float:
        """Average arrival rate over the trace duration."""
        if len(self.records) < 2 or self.duration_ms <= 0:
            return 0.0
        return (len(self.records) - 1) / (self.duration_ms / 1000.0)

    # -- persistence ----------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace in the text format described in the module docs."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# trace: {self.name}\n")
            handle.write("# time_ms lba sectors R|W\n")
            for record in self.records:
                flag = "W" if record.is_write else "R"
                handle.write(
                    f"{record.time_ms:.3f} {record.lba} {record.sectors} {flag}\n"
                )

    @classmethod
    def load(cls, path: Union[str, Path], name: str = "") -> "Trace":
        """Parse a trace file.

        Raises:
            TraceError: on malformed lines or ordering violations.
        """
        path = Path(path)
        records: List[TraceRecord] = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("R", "W"):
                    raise TraceError(
                        f"{path}:{line_number}: malformed trace line {line!r}"
                    )
                try:
                    record = TraceRecord(
                        time_ms=float(parts[0]),
                        lba=int(parts[1]),
                        sectors=int(parts[2]),
                        is_write=parts[3] == "W",
                    )
                except ValueError as exc:
                    raise TraceError(f"{path}:{line_number}: {exc}") from exc
                records.append(record)
        return cls(name=name or path.stem, records=records)

    @classmethod
    def from_records(cls, name: str, records: Iterable[TraceRecord]) -> "Trace":
        """Build a trace, sorting records by time."""
        return cls(name=name, records=sorted(records, key=lambda r: r.time_ms))

    def scaled_rate(self, factor: float) -> "Trace":
        """A new trace with inter-arrival times divided by ``factor``
        (factor > 1 intensifies the workload)."""
        if factor <= 0:
            raise TraceError(f"rate factor must be positive, got {factor}")
        return Trace(
            name=f"{self.name}-x{factor:g}",
            records=[
                TraceRecord(
                    time_ms=record.time_ms / factor,
                    lba=record.lba,
                    sectors=record.sectors,
                    is_write=record.is_write,
                )
                for record in self.records
            ],
        )
