"""Closed-loop workload generation.

The paper's trace replay is open-loop (arrivals are independent of
completions).  Real applications are partly closed-loop: a fixed client
population issues a request, waits for it, thinks, and issues the next.
Closed loops self-throttle under slow storage, which matters when
comparing DTM policies that deliberately delay requests — the open-loop
penalty overstates the damage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict

from repro.errors import TraceError
from repro.simulation.request import Request
from repro.workloads.synthetic import WorkloadShape

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.simulation.system import StorageSystem


@dataclass
class ClosedLoopResult:
    """Outcome of a closed-loop run.

    Attributes:
        completed: requests finished.
        simulated_ms: total simulated time.
        mean_response_ms: average response time.
    """

    completed: int
    simulated_ms: float
    mean_response_ms: float

    @property
    def throughput_per_s(self) -> float:
        """Completed requests per simulated second."""
        if self.simulated_ms <= 0:
            return 0.0
        return self.completed / (self.simulated_ms / 1000.0)


class _Client:
    """One think-time client: issue, wait, think, repeat."""

    def __init__(
        self,
        system: "StorageSystem",
        shape: WorkloadShape,
        think_time_ms: float,
        budget: int,
        rng: random.Random,
        waiters: Dict[int, Callable],
    ) -> None:
        self.system = system
        self.shape = shape
        self.think_time_ms = think_time_ms
        self.remaining = budget
        self.rng = rng
        self.waiters = waiters
        self.capacity = system.array.logical_sectors
        self._sizes, self._weights = zip(*shape.size_mix)

    def start(self) -> None:
        self.system.events.schedule_after(self._think(), lambda t: self.issue(t))

    def _think(self) -> float:
        return self.rng.expovariate(1.0 / self.think_time_ms)

    def issue(self, now: float) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        sectors = self.rng.choices(self._sizes, weights=self._weights, k=1)[0]
        request = Request(
            arrival_ms=now,
            lba=self.rng.randrange(self.capacity - sectors),
            sectors=sectors,
            is_write=self.rng.random() >= self.shape.read_fraction,
        )
        self.waiters[request.request_id] = self._completed
        self.system.array.submit(request)

    def _completed(self, request: Request, now: float) -> None:
        if self.remaining > 0:
            self.system.events.schedule_after(
                self._think(), lambda t: self.issue(t)
            )


def run_closed_loop(
    system: "StorageSystem",
    shape: WorkloadShape,
    clients: int = 8,
    think_time_ms: float = 10.0,
    requests_per_client: int = 100,
    seed: int = 0,
) -> ClosedLoopResult:
    """Run a closed-loop client population against a storage system.

    Args:
        system: a fresh storage system (its event queue must be unused).
        shape: supplies the request-size mix and read fraction.
        clients: concurrent client population.
        think_time_ms: mean exponential think time between a completion
            and the client's next issue.
        requests_per_client: per-client request budget.
        seed: RNG seed.

    Raises:
        TraceError: on invalid parameters or if the run loses requests.
    """
    if clients < 1 or requests_per_client < 1:
        raise TraceError("need at least one client and one request")
    if think_time_ms <= 0:
        raise TraceError("think time must be positive")

    waiters: Dict[int, Callable] = {}
    completed = {"count": 0}
    base_callback = system.array.on_complete

    def dispatcher(request: Request, now: float) -> None:
        if base_callback is not None:
            base_callback(request, now)
        completed["count"] += 1
        waiter = waiters.pop(request.request_id, None)
        if waiter is not None:
            waiter(request, now)

    system.array.on_complete = dispatcher
    for index in range(clients):
        _Client(
            system,
            shape,
            think_time_ms,
            requests_per_client,
            random.Random(seed * 7919 + index),
            waiters,
        ).start()
    system.events.run()

    total = clients * requests_per_client
    if completed["count"] != total:
        raise TraceError(
            f"closed loop finished {completed['count']} of {total} requests"
        )
    return ClosedLoopResult(
        completed=completed["count"],
        simulated_ms=system.events.now_ms,
        mean_response_ms=system.stats.mean_ms(),
    )
