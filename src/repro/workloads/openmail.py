"""HPL Openmail workload (Alvarez et al. [1]).

An e-mail server trace collected in 2000 over an 8-disk RAID array of
~9.3 GB, 10K RPM disks.  The paper highlights its seek intensity — an
average seek distance of 1,952 cylinders with 86% of requests moving the
arm — yet most requests span multiple successive blocks, so higher RPM
still helps substantially (the 54.5 ms baseline mean response time drops
by over half with +5K RPM).  The synthetic stand-in is bursty, read-mostly,
medium-sized and spatially spread, pushing the array into heavy queueing at
the base RPM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workloads.synthetic import WorkloadShape

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.workloads.catalog import WorkloadSpec

SHAPE = WorkloadShape(
    name="openmail",
    mean_interarrival_ms=5.2,
    burstiness=8.0,
    read_fraction=0.65,
    size_mix=((8, 0.35), (16, 0.35), (32, 0.20), (64, 0.10)),
    sequential_fraction=0.20,
    stream_count=8,
    hot_fraction=0.6,
    hot_region_fraction=0.2,
)


def _spec() -> WorkloadSpec:
    from repro.workloads.catalog import WorkloadSpec

    return WorkloadSpec(
        name="openmail",
        display_name="HPL Openmail",
        year=2000,
        disk_count=8,
        base_rpm=10000.0,
        disk_capacity_gb=9.29,
        raid5=True,
        shape=SHAPE,
        kbpi=350.0,
        ktpi=20.0,
        platters=2,
    )


SPEC = _spec()
