"""Workloads: trace format, synthetic generators, and the Figure-4 catalog."""

from repro.workloads.analysis import (
    SeekActivity,
    TraceProfile,
    compare_to_paper_openmail,
    profile_trace,
    replay_and_analyze,
    seek_activity,
)
from repro.workloads.catalog import WorkloadSpec, catalog, workload
from repro.workloads.closed_loop import ClosedLoopResult, run_closed_loop
from repro.workloads.disksim_format import read_disksim, write_disksim
from repro.workloads.synthetic import WorkloadShape, generate_trace
from repro.workloads.trace import Trace, TraceRecord

__all__ = [
    "TraceProfile",
    "SeekActivity",
    "profile_trace",
    "seek_activity",
    "replay_and_analyze",
    "compare_to_paper_openmail",
    "Trace",
    "TraceRecord",
    "WorkloadShape",
    "generate_trace",
    "WorkloadSpec",
    "ClosedLoopResult",
    "run_closed_loop",
    "read_disksim",
    "write_disksim",
    "catalog",
    "workload",
]
