"""Synthetic workload generation.

The paper replays five commercial traces (Figure 4a) that are not
redistributable.  This module provides a parametric generator whose shape
parameters — arrival rate and burstiness, read fraction, request-size mix,
sequentiality, and spatial locality — are set per workload (in the sibling
modules) to the published summary characteristics, producing traces that
exercise the same simulator regimes: seek-bound, queue-bound, cache-friendly
sequential, and light random traffic.

Arrivals use a two-branch hyperexponential: burstiness 1.0 degenerates to a
Poisson process, larger values inflate the inter-arrival variance at a
fixed mean (bursty server traffic), which is what pushes queue-dominated
workloads like Openmail into the long response-time tail the paper shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import TraceError
from repro.workloads.trace import Trace, TraceRecord


@dataclass(frozen=True)
class WorkloadShape:
    """Statistical shape of a synthetic workload.

    Attributes:
        name: workload label.
        mean_interarrival_ms: mean time between request arrivals.
        burstiness: squared-coefficient-of-variation knob; 1.0 = Poisson.
        read_fraction: probability a request is a read.
        size_mix: ((sectors, weight), ...) request-size distribution.
        sequential_fraction: probability a request continues an active
            sequential stream rather than starting somewhere new.
        stream_count: number of concurrent sequential streams maintained.
        hot_fraction: probability a *new* (non-sequential) request targets
            the hot region.
        hot_region_fraction: fraction of the address space that is hot.
    """

    name: str
    mean_interarrival_ms: float
    burstiness: float = 1.0
    read_fraction: float = 0.7
    size_mix: Tuple[Tuple[int, float], ...] = ((8, 1.0),)
    sequential_fraction: float = 0.0
    stream_count: int = 4
    hot_fraction: float = 0.0
    hot_region_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.mean_interarrival_ms <= 0:
            raise TraceError("mean inter-arrival must be positive")
        if self.burstiness < 1.0:
            raise TraceError(f"burstiness must be >= 1, got {self.burstiness}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise TraceError("read fraction must be in [0, 1]")
        if not self.size_mix or any(s <= 0 or w <= 0 for s, w in self.size_mix):
            raise TraceError("size mix must be non-empty with positive entries")
        if not 0.0 <= self.sequential_fraction < 1.0:
            raise TraceError("sequential fraction must be in [0, 1)")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise TraceError("hot fraction must be in [0, 1]")
        if not 0.0 < self.hot_region_fraction <= 1.0:
            raise TraceError("hot region fraction must be in (0, 1]")

    def scaled_rate(self, factor: float) -> "WorkloadShape":
        """A copy with the arrival rate multiplied by ``factor``."""
        if factor <= 0:
            raise TraceError("rate factor must be positive")
        from dataclasses import replace

        return replace(self, mean_interarrival_ms=self.mean_interarrival_ms / factor)


class _Arrivals:
    """Hyperexponential-2 arrival process with a given mean and burstiness.

    With probability ``p`` the gap is drawn from a short-mean exponential,
    otherwise from a long-mean one; means are chosen to preserve the overall
    mean while inflating variance as burstiness grows.
    """

    SHORT_PROBABILITY = 0.9

    def __init__(self, mean_ms: float, burstiness: float, rng: random.Random) -> None:
        self._rng = rng
        p = self.SHORT_PROBABILITY
        self._short_mean = mean_ms / burstiness
        self._long_mean = (mean_ms - p * self._short_mean) / (1.0 - p)
        self._p = p

    def next_gap_ms(self) -> float:
        mean = (
            self._short_mean
            if self._rng.random() < self._p
            else self._long_mean
        )
        return self._rng.expovariate(1.0 / mean)


class _Streams:
    """Active sequential streams for run-oriented workloads."""

    def __init__(self, count: int, capacity: int, rng: random.Random) -> None:
        self._rng = rng
        self._capacity = capacity
        self._positions: List[int] = [
            rng.randrange(capacity) for _ in range(max(count, 1))
        ]

    def continue_stream(self, sectors: int) -> int:
        index = self._rng.randrange(len(self._positions))
        position = self._positions[index]
        if position + sectors > self._capacity:
            position = self._rng.randrange(self._capacity - sectors)
        self._positions[index] = position + sectors
        return position

    def restart_stream(self, at: int) -> None:
        index = self._rng.randrange(len(self._positions))
        self._positions[index] = at


def generate_trace(
    shape: WorkloadShape,
    num_requests: int,
    capacity_sectors: int,
    seed: int = 0,
) -> Trace:
    """Generate a synthetic trace.

    Args:
        shape: workload shape parameters.
        num_requests: number of requests to emit.
        capacity_sectors: logical address space; requests never exceed it.
        seed: RNG seed for reproducibility.
    """
    if num_requests < 1:
        raise TraceError(f"need at least one request, got {num_requests}")
    max_size = max(s for s, _ in shape.size_mix)
    if capacity_sectors <= max_size:
        raise TraceError(
            f"capacity {capacity_sectors} too small for requests of {max_size}"
        )
    rng = random.Random(seed)
    arrivals = _Arrivals(shape.mean_interarrival_ms, shape.burstiness, rng)
    streams = _Streams(shape.stream_count, capacity_sectors, rng)
    sizes, weights = zip(*shape.size_mix)
    hot_limit = max(int(capacity_sectors * shape.hot_region_fraction), max_size + 1)

    records: List[TraceRecord] = []
    time_ms = 0.0
    for _ in range(num_requests):
        time_ms += arrivals.next_gap_ms()
        sectors = rng.choices(sizes, weights=weights, k=1)[0]
        if shape.sequential_fraction > 0 and rng.random() < shape.sequential_fraction:
            lba = streams.continue_stream(sectors)
        else:
            if shape.hot_fraction > 0 and rng.random() < shape.hot_fraction:
                lba = rng.randrange(hot_limit - sectors)
            else:
                lba = rng.randrange(capacity_sectors - sectors)
            streams.restart_stream(lba + sectors)
        is_write = rng.random() >= shape.read_fraction
        records.append(
            TraceRecord(time_ms=time_ms, lba=lba, sectors=sectors, is_write=is_write)
        )
    return Trace(name=shape.name, records=records)
