"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """A drive geometry parameter is physically impossible or inconsistent."""


class RecordingError(ReproError):
    """A recording-technology parameter (BPI/TPI/zones/ECC) is invalid."""


class ThermalError(ReproError):
    """The thermal model was given invalid inputs or failed to converge."""


class EnvelopeError(ThermalError):
    """No operating point satisfies the requested thermal envelope."""


class RoadmapError(ReproError):
    """The roadmap engine was asked for an infeasible configuration."""


class SimulationError(ReproError):
    """The storage simulator detected an inconsistent event or request."""


class TraceError(ReproError):
    """A workload trace is malformed or violates ordering invariants."""


class DTMError(ReproError):
    """A dynamic-thermal-management policy received invalid parameters."""


class FaultError(ReproError):
    """A fault-injection plan is invalid (rates, retries, taxonomy)."""


class StoreError(ReproError):
    """The result store was given an invalid key, config or directory."""


class FleetError(ReproError):
    """A fleet topology or fleet-simulation parameter is invalid."""


class ServiceError(ReproError):
    """The sweep job service rejected a request or configuration.

    Carries an HTTP status so the wire layer can map validation problems
    (400), unknown resources (404) and drain-time refusals (503) without
    string-matching messages.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class SweepExecutionError(SimulationError):
    """A sweep task failed and the caller asked for strict (fail-fast)
    semantics; carries the worker-side traceback text."""

    def __init__(self, message: str, traceback_text: str = "") -> None:
        super().__init__(message)
        self.traceback_text = traceback_text
