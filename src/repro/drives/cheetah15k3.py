"""The dissected reference drive: Seagate Cheetah 15K.3 ST318453.

The paper took this drive apart, measured its geometry with Vernier
calipers, and used it to validate and calibrate the thermal model: a single
2.6-inch platter inside a 3.5-inch form-factor enclosure, spinning at 15K
RPM with a 3.9 W VCM.  With SPM and VCM always on and a 28 C ambient, the
modeled internal air settles at 45.22 C (the thermal envelope) in about 48
minutes — close to the drive's rated 55 C maximum once the ~10 C from
on-board electronics is added back.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import AMBIENT_TEMPERATURE_C
from repro.thermal.model import DriveThermalModel, ThermalCalibration

#: Published characteristics of the ST318453 validation unit.
MODEL_NAME = "Seagate Cheetah 15K.3 ST318453"
PLATTER_DIAMETER_IN = 2.6
PLATTER_COUNT = 1
RPM = 15000.0
VCM_POWER_W = 3.9
RATED_MAX_OPERATING_C = 55.0


def thermal_model(
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    vcm_active: bool = True,
    calibration: Optional[ThermalCalibration] = None,
) -> DriveThermalModel:
    """Thermal model of the reference drive.

    Args:
        ambient_c: external cooled-air temperature (paper: 28 C wet-bulb).
        vcm_active: whether the actuator is continuously seeking.
        calibration: override the default fitted calibration.
    """
    return DriveThermalModel(
        platter_diameter_in=PLATTER_DIAMETER_IN,
        platter_count=PLATTER_COUNT,
        rpm=RPM,
        ambient_c=ambient_c,
        vcm_active=vcm_active,
        calibration=calibration,
    )
