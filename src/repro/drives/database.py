"""The paper's validation drives.

Table 1: thirteen SCSI drives from four manufacturers (1999-2002) with the
datasheet capacity/IDR and the values the paper's model produced for them.
Table 2: rated maximum operating temperatures vs specified external wet-bulb
temperature for four of those drives.
"""

from __future__ import annotations

from typing import Dict, List

from repro.drives.spec import DriveSpec
from repro.errors import ReproError

#: Table 1 of the paper.  ``datasheet_*`` columns are the manufacturer
#: figures; the paper's own model predictions are kept alongside in
#: :data:`PAPER_MODEL_PREDICTIONS` for regression comparison.
TABLE1_DRIVES: List[DriveSpec] = [
    DriveSpec("Quantum Atlas 10K", 1999, 10000, 256, 13.0, 3.3, 6, 18.0, 39.3),
    DriveSpec(
        "IBM Ultrastar 36LZX", 1999, 10000, 352, 20.0, 3.0, 6, 36.0, 56.5,
        max_operating_temp_c=50.0, wet_bulb_temp_c=29.4,
    ),
    DriveSpec(
        "Seagate Cheetah X15", 2000, 15000, 343, 21.4, 2.6, 5, 18.0, 63.5,
        max_operating_temp_c=55.0, wet_bulb_temp_c=28.0,
    ),
    DriveSpec("Quantum Atlas 10K II", 2000, 10000, 341, 14.2, 3.3, 3, 18.0, 59.8),
    DriveSpec(
        "IBM Ultrastar 36Z15", 2001, 15000, 397, 27.0, 2.6, 6, 36.0, 80.9,
        max_operating_temp_c=55.0, wet_bulb_temp_c=29.4,
    ),
    DriveSpec("IBM Ultrastar 73LZX", 2001, 10000, 480, 27.3, 3.3, 3, 36.0, 86.3),
    DriveSpec(
        "Seagate Barracuda 180", 2001, 7200, 490, 31.2, 3.7, 12, 180.0, 63.5,
        max_operating_temp_c=50.0, wet_bulb_temp_c=28.0,
    ),
    DriveSpec("Fujitsu AL-7LX", 2001, 15000, 450, 35.0, 2.7, 4, 36.0, 91.8),
    DriveSpec("Seagate Cheetah X15-36LP", 2001, 15000, 482, 38.0, 2.6, 4, 36.0, 88.6),
    DriveSpec("Seagate Cheetah 73LP", 2001, 10000, 485, 38.0, 3.3, 4, 73.0, 83.9),
    DriveSpec("Fujitsu AL-7LE", 2001, 10000, 485, 39.5, 3.3, 4, 73.0, 84.1),
    DriveSpec("Seagate Cheetah 10K.6", 2002, 10000, 570, 64.0, 3.3, 4, 146.0, 105.1),
    DriveSpec("Seagate Cheetah 15K.3", 2002, 15000, 533, 64.0, 2.6, 4, 73.0, 111.4),
]

#: The paper's own model outputs for Table 1, as (capacity GB, IDR MB/s).
#: Used to confirm our implementation reproduces the published model rather
#: than just landing near the datasheets by accident.
PAPER_MODEL_PREDICTIONS: Dict[str, tuple] = {
    "Quantum Atlas 10K": (17.6, 46.5),
    "IBM Ultrastar 36LZX": (30.8, 58.1),
    "Seagate Cheetah X15": (20.1, 73.6),
    "Quantum Atlas 10K II": (12.8, 61.9),
    "IBM Ultrastar 36Z15": (35.2, 72.1),
    "IBM Ultrastar 73LZX": (34.7, 85.2),
    "Seagate Barracuda 180": (203.5, 71.8),
    "Fujitsu AL-7LX": (37.2, 100.3),
    "Seagate Cheetah X15-36LP": (40.1, 103.4),
    "Seagate Cheetah 73LP": (65.1, 88.1),
    "Fujitsu AL-7LE": (67.6, 88.1),
    "Seagate Cheetah 10K.6": (128.8, 103.5),
    "Seagate Cheetah 15K.3": (74.8, 114.4),
}

#: Table 2 of the paper: the drives with published thermal ratings.
TABLE2_DRIVES: List[DriveSpec] = [
    drive
    for drive in TABLE1_DRIVES
    if drive.max_operating_temp_c is not None
]


def drive_by_model(model: str) -> DriveSpec:
    """Look up a Table 1 drive by its model name.

    Raises:
        ReproError: if no drive with that name exists.
    """
    for drive in TABLE1_DRIVES:
        if drive.model == model:
            return drive
    known = ", ".join(d.model for d in TABLE1_DRIVES)
    raise ReproError(f"unknown drive model {model!r}; known models: {known}")


def drives_for_year(year: int) -> List[DriveSpec]:
    """All Table 1 drives introduced in a given year."""
    return [drive for drive in TABLE1_DRIVES if drive.year == year]
