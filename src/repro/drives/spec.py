"""Drive specification records.

A :class:`DriveSpec` captures what a datasheet says about a drive (the
inputs and ground truth of the paper's Table 1), and knows how to build the
library's capacity/performance models for itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.capacity.model import CapacityModel
from repro.capacity.recording import RecordingTechnology
from repro.capacity.zones import ZonedSurface
from repro.constants import VALIDATION_ZONES
from repro.errors import ReproError
from repro.geometry.platter import Platter
from repro.performance.idr import surface_idr_mb_per_s
from repro.units import MIB

if TYPE_CHECKING:  # imported lazily at runtime to avoid a drives<->simulation cycle
    from repro.simulation.disk import SimulatedDisk
    from repro.simulation.events import EventQueue


@dataclass(frozen=True)
class DriveSpec:
    """Datasheet description of a real drive.

    Attributes:
        model: marketing model name.
        year: year of market introduction.
        rpm: spindle speed.
        kbpi: linear density in kilo-bits-per-inch.
        ktpi: track density in kilo-tracks-per-inch.
        diameter_in: platter (media) diameter in inches.
        platters: platter count.
        datasheet_capacity_gb: rated capacity, decimal GB.
        datasheet_idr_mb_per_s: rated maximum internal data rate, MB/s.
        max_operating_temp_c: rated maximum operating temperature, if known.
        wet_bulb_temp_c: specified external wet-bulb temperature, if known.
    """

    model: str
    year: int
    rpm: float
    kbpi: float
    ktpi: float
    diameter_in: float
    platters: int
    datasheet_capacity_gb: float
    datasheet_idr_mb_per_s: float
    max_operating_temp_c: Optional[float] = None
    wet_bulb_temp_c: Optional[float] = None

    def __post_init__(self) -> None:
        if self.platters < 1:
            raise ReproError(f"{self.model}: platter count must be >= 1")
        if self.rpm <= 0:
            raise ReproError(f"{self.model}: rpm must be positive")

    # -- model construction --------------------------------------------------------

    def technology(self) -> RecordingTechnology:
        """Recording technology of this drive."""
        return RecordingTechnology.from_kilo_units(self.kbpi, self.ktpi)

    def platter(self) -> Platter:
        """Platter geometry of this drive."""
        return Platter(diameter_in=self.diameter_in)

    def capacity_model(self, zone_count: int = VALIDATION_ZONES) -> CapacityModel:
        """The library's capacity model configured for this drive."""
        return CapacityModel(
            platter=self.platter(),
            technology=self.technology(),
            platter_count=self.platters,
            zone_count=zone_count,
        )

    def surface(self, zone_count: int = VALIDATION_ZONES) -> ZonedSurface:
        """ZBR layout of one surface of this drive."""
        return ZonedSurface(
            platter=self.platter(),
            technology=self.technology(),
            zone_count=zone_count,
        )

    # -- model predictions -----------------------------------------------------------

    def modeled_capacity_gb(self, zone_count: int = VALIDATION_ZONES) -> float:
        """Capacity predicted by the library's model, decimal GB."""
        return self.capacity_model(zone_count).usable_capacity_gb()

    def modeled_capacity_paper_gb(self, zone_count: int = VALIDATION_ZONES) -> float:
        """Capacity in the paper's (binary GiB) reporting convention.

        Table 1's "Model Cap." column sits a constant 0.9313 factor below
        the decimal-GB computation, i.e. the paper reports 2**30-byte units;
        use this when regression-testing against the paper's own numbers.
        """
        return self.capacity_model(zone_count).usable_capacity_gib()

    def modeled_idr_mb_per_s(self, zone_count: int = VALIDATION_ZONES) -> float:
        """IDR predicted by the library's model, MB/s."""
        return surface_idr_mb_per_s(self.surface(zone_count), self.rpm)

    def simulated_disk(
        self,
        events: "EventQueue",
        name: Optional[str] = None,
        zone_count: int = VALIDATION_ZONES,
        cache_bytes: int = 4 * MIB,
    ) -> "SimulatedDisk":
        """A :class:`repro.simulation.disk.SimulatedDisk` of this drive.

        Bridges the drive database into the storage simulator: the ZBR
        layout, seek curve (from the platter-size correlation) and spindle
        speed all come from this spec.

        Args:
            events: the simulation's event queue.
            name: disk label (defaults to the model name).
            zone_count: ZBR zones.
            cache_bytes: on-drive buffer cache size.
        """
        from repro.simulation.disk import standard_disk

        return standard_disk(
            name=name or self.model,
            events=events,
            diameter_in=self.diameter_in,
            platters=self.platters,
            kbpi=self.kbpi,
            ktpi=self.ktpi,
            rpm=self.rpm,
            zone_count=zone_count,
            cache_bytes=cache_bytes,
        )

    def capacity_error(self, zone_count: int = VALIDATION_ZONES) -> float:
        """Relative capacity error vs the datasheet (signed fraction)."""
        modeled = self.modeled_capacity_gb(zone_count)
        return (modeled - self.datasheet_capacity_gb) / self.datasheet_capacity_gb

    def idr_error(self, zone_count: int = VALIDATION_ZONES) -> float:
        """Relative IDR error vs the datasheet (signed fraction)."""
        modeled = self.modeled_idr_mb_per_s(zone_count)
        return (modeled - self.datasheet_idr_mb_per_s) / self.datasheet_idr_mb_per_s
