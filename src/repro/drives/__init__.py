"""Real-drive database: Table 1/2 validation drives and the dissected
Cheetah 15K.3 reference."""

from repro.drives import cheetah15k3
from repro.drives.database import (
    PAPER_MODEL_PREDICTIONS,
    TABLE1_DRIVES,
    TABLE2_DRIVES,
    drive_by_model,
    drives_for_year,
)
from repro.drives.spec import DriveSpec

__all__ = [
    "DriveSpec",
    "TABLE1_DRIVES",
    "TABLE2_DRIVES",
    "PAPER_MODEL_PREDICTIONS",
    "drive_by_model",
    "drives_for_year",
    "cheetah15k3",
]
