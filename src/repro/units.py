"""Unit conversions used throughout the library.

The paper mixes imperial recording units (inches, bits-per-inch,
tracks-per-inch) with SI thermal units (watts, kelvins, meters) and storage
marketing units (GB = 1e9 bytes for capacities, MB/s = 2**20 bytes/s for
internal data rates, matching the validation tables in the paper).  This
module centralizes every conversion so the rest of the code never multiplies
by a bare magic number.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------

METERS_PER_INCH = 0.0254
MM_PER_INCH = 25.4


def inches_to_meters(inches: float) -> float:
    """Convert a length in inches to meters."""
    return inches * METERS_PER_INCH


def meters_to_inches(meters: float) -> float:
    """Convert a length in meters to inches."""
    return meters / METERS_PER_INCH


def inches_to_mm(inches: float) -> float:
    """Convert a length in inches to millimeters."""
    return inches * MM_PER_INCH


def mm_to_inches(mm: float) -> float:
    """Convert a length in millimeters to inches."""
    return mm / MM_PER_INCH


# ---------------------------------------------------------------------------
# Angular velocity
# ---------------------------------------------------------------------------


def rpm_to_rad_per_sec(rpm: float) -> float:
    """Convert rotations-per-minute to radians-per-second."""
    return rpm * 2.0 * math.pi / 60.0


def rad_per_sec_to_rpm(omega: float) -> float:
    """Convert radians-per-second to rotations-per-minute."""
    return omega * 60.0 / (2.0 * math.pi)


def rpm_to_rev_per_sec(rpm: float) -> float:
    """Convert rotations-per-minute to revolutions-per-second."""
    return rpm / 60.0


def rotation_time_ms(rpm: float) -> float:
    """Time for one full revolution, in milliseconds."""
    if rpm <= 0:
        raise ValueError(f"rpm must be positive, got {rpm}")
    return 60000.0 / rpm


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------

BYTES_PER_SECTOR = 512
BITS_PER_SECTOR = BYTES_PER_SECTOR * 8  # 4096 data bits per 512-byte sector
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024
GB_MARKETING = 1_000_000_000  # drive datasheets use decimal gigabytes
MB_DECIMAL = 1_000_000  # interface/bus datasheets (Ultra160 = 160e6 B/s)


def bits_to_sectors(bits: float) -> int:
    """Whole 512-byte sectors representable in ``bits`` raw data bits."""
    return int(bits // BITS_PER_SECTOR)


def sectors_to_gb(sectors: float) -> float:
    """Convert a 512-byte sector count to marketing gigabytes (1e9 bytes)."""
    return sectors * BYTES_PER_SECTOR / GB_MARKETING


def bytes_to_mb_per_sec(bytes_per_sec: float) -> float:
    """Convert bytes/second to the MB/s (2**20) used in IDR datasheets."""
    return bytes_per_sec / MIB


def interface_mb_per_s_to_bytes_per_s(mb_per_s: float) -> float:
    """Convert a bus/interface rate in decimal MB/s (1e6) to bytes/second.

    Interface datasheets (Ultra160/Ultra320 SCSI) quote decimal megabytes,
    unlike internal data rates which use 2**20; keeping both factors here is
    what stops the two conventions from being mixed silently.
    """
    return mb_per_s * MB_DECIMAL


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------

KELVIN_OFFSET = 273.15


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to kelvins."""
    return celsius + KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert kelvins to degrees Celsius."""
    return kelvin - KELVIN_OFFSET


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


def minutes_to_seconds(minutes: float) -> float:
    """Convert minutes to seconds."""
    return minutes * 60.0


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1000.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0
