"""Material thermal properties used by the drive thermal model.

The paper assumes the platters, spindle hub and disk arm are aluminum (the
exact Al-Mg alloy is proprietary) and the base/cover castings are aluminum
as well.  The internal drive air is modeled as dry air at roughly the drive
operating temperature.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """Thermal properties of a homogeneous material.

    Attributes:
        name: human-readable material name.
        density: mass density in kg/m^3.
        specific_heat: specific heat capacity in J/(kg K).
        conductivity: thermal conductivity in W/(m K).
    """

    name: str
    density: float
    specific_heat: float
    conductivity: float

    def __post_init__(self) -> None:
        for field_name in ("density", "specific_heat", "conductivity"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive, got {value}")

    def volumetric_heat_capacity(self) -> float:
        """Heat capacity per unit volume, J/(m^3 K)."""
        return self.density * self.specific_heat

    def thermal_diffusivity(self) -> float:
        """Thermal diffusivity k / (rho c), m^2/s."""
        return self.conductivity / self.volumetric_heat_capacity()


@dataclass(frozen=True)
class Fluid(Material):
    """A fluid: a material plus transport properties needed for convection.

    Attributes:
        kinematic_viscosity: nu in m^2/s.
        prandtl: Prandtl number (dimensionless).
    """

    kinematic_viscosity: float = 0.0
    prandtl: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kinematic_viscosity <= 0:
            raise ValueError(f"{self.name}: kinematic_viscosity must be positive")
        if self.prandtl <= 0:
            raise ValueError(f"{self.name}: prandtl must be positive")


#: Aluminum (platters, hub, arms, base and cover castings).  Generic 6xxx
#: wrought-alloy values; the exact drive alloys are proprietary (paper §3.3).
ALUMINUM = Material(name="aluminum", density=2700.0, specific_heat=896.0, conductivity=180.0)

#: Stainless steel (spindle shaft, screws); used for small internal parts.
STEEL = Material(name="steel", density=7850.0, specific_heat=490.0, conductivity=16.0)

#: Dry air near 40 C, the regime of the internal drive air.
AIR = Fluid(
    name="air",
    density=1.127,
    specific_heat=1007.0,
    conductivity=0.0271,
    kinematic_viscosity=1.70e-5,
    prandtl=0.706,
)
