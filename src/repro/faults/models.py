"""Deterministic, seed-driven fault models for the storage simulator.

The paper's core argument is about surviving adverse events: thermal
emergencies force throttling, and every 15 °C of overheating doubles the
failure rate (:mod:`repro.thermal.reliability`).  This module supplies the
*fault inputs* of that story as first-class simulation objects:

* **Media errors** — an ECC read/write retry costs extra platter
  revolutions; a hard error escalates to a sector remap (a seek out to the
  spare pool and back plus a revolution).
* **Servo faults** — the head fails to settle on track and must re-settle
  after (on average) half a revolution of re-acquisition.
* **Thermal emergencies** — spurious over-temperature events whose
  probability scales with the reliability model's failure-acceleration
  curve, so a drive running hot near the envelope faults more often.

**Determinism is the load-bearing property.**  Every fault decision is a
pure function of ``(seed, subject, ordinal, salt)`` hashed through
BLAKE2b — never of process-global RNG state or wall-clock time — so a
fault-injected run is bit-identical between the serial and parallel sweep
paths, across hosts, and across Python's per-process string-hash salts.
All latency penalties are *derived from the disk's own mechanics* (its
rotation period, settle time and seek curve) rather than spelled as bare
millisecond constants.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import FaultError
from repro.thermal.reliability import failure_acceleration

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.simulation.mechanics import DiskMechanics

#: Fault kinds emitted by the injectors (the taxonomy; see
#: ``docs/resilience.md``).
FAULT_KINDS = ("media_retry", "media_remap", "servo", "thermal_emergency")

#: 2**64 as a float divisor — maps a 64-bit digest to [0, 1).
_DIGEST_SPAN = float(2**64)


def unit_draw(seed: int, subject: str, ordinal: int, salt: str) -> float:
    """A deterministic draw in ``[0, 1)`` from a stable content hash.

    Python's builtin ``hash`` of strings is salted per process, and a
    shared ``random.Random`` would make outcomes depend on *call order
    across components*; hashing the full decision coordinates keeps every
    draw independent of both.
    """
    digest = hashlib.blake2b(
        f"{seed}:{subject}:{ordinal}:{salt}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _DIGEST_SPAN


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection plan shared by every disk in a system.

    Frozen (and therefore hashable/picklable) so it can ride inside the
    sweep task dataclasses across process boundaries.

    Attributes:
        seed: root of every deterministic draw; combined with the disk
            name and per-disk request ordinal.
        media_rate: probability that one media access suffers a
            recoverable media error (ECC retry path).
        servo_rate: probability that one media access suffers a servo
            settle fault.
        remap_fraction: fraction of media errors that escalate to a
            sector remap.
        max_ecc_retries: worst-case ECC re-read attempts; the actual
            retry count of an error is drawn uniformly in
            ``[1, max_ecc_retries]``.
        thermal_emergency_rate: per-controller-check probability of a
            spurious thermal emergency *at the reference temperature*;
            scaled by the reliability failure-acceleration curve as the
            drive runs hotter (see :class:`ThermalEmergencyModel`).
    """

    seed: int = 0
    media_rate: float = 0.0
    servo_rate: float = 0.0
    remap_fraction: float = 0.25
    max_ecc_retries: int = 3
    thermal_emergency_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("media_rate", "servo_rate", "remap_fraction",
                     "thermal_emergency_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {value}")
        if self.max_ecc_retries < 1:
            raise FaultError(
                f"max_ecc_retries must be >= 1, got {self.max_ecc_retries}"
            )

    @property
    def injects_disk_faults(self) -> bool:
        """Whether any per-access (media/servo) fault can fire."""
        return self.media_rate > 0.0 or self.servo_rate > 0.0

    @property
    def injects_any(self) -> bool:
        return self.injects_disk_faults or self.thermal_emergency_rate > 0.0

    def injector_for(
        self, disk_name: str, scope: Optional[str] = None
    ) -> "DiskFaultInjector":
        """A per-disk injector keyed by the disk's name.

        Args:
            disk_name: the disk's name within its system.
            scope: optional fleet-level identity prefix (e.g.
                ``rack00/e1/s3``).  Disk names are only unique within
                one simulated system; at fleet scale two drives with
                identical configs in different slots would otherwise
                share a draw subject — and therefore an identical fault
                stream.  The scope folds the rack/enclosure/slot
                coordinates into the subject so every physical drive
                draws independently.  ``None`` keeps the bare name
                (single-system behaviour, and its keys, unchanged).
        """
        subject = disk_name if scope is None else f"{scope}/{disk_name}"
        return DiskFaultInjector(config=self, subject=subject)

    def emergency_model(self, subject: str = "dtm") -> "ThermalEmergencyModel":
        """A thermal-emergency injector for a DTM controller."""
        return ThermalEmergencyModel(config=self, subject=subject)


@dataclass
class FaultStats:
    """Counters for faults injected into one component (or a whole run)."""

    media_retries: int = 0
    media_remaps: int = 0
    servo_faults: int = 0
    thermal_emergencies: int = 0
    ecc_retries: int = 0
    extra_ms: float = 0.0

    @property
    def total_injected(self) -> int:
        return (
            self.media_retries
            + self.media_remaps
            + self.servo_faults
            + self.thermal_emergencies
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-data snapshot (JSON-serializable, sweep-picklable)."""
        return {
            "media_retries": self.media_retries,
            "media_remaps": self.media_remaps,
            "servo_faults": self.servo_faults,
            "thermal_emergencies": self.thermal_emergencies,
            "ecc_retries": self.ecc_retries,
            "extra_ms": self.extra_ms,
            "total_injected": self.total_injected,
        }

    def merge(self, other: "FaultStats") -> None:
        """Accumulate another component's counters into this one."""
        self.media_retries += other.media_retries
        self.media_remaps += other.media_remaps
        self.servo_faults += other.servo_faults
        self.thermal_emergencies += other.thermal_emergencies
        self.ecc_retries += other.ecc_retries
        self.extra_ms += other.extra_ms


@dataclass
class InjectedFault:
    """One fault decision: its kind and the latency it costs."""

    kind: str
    extra_ms: float
    ecc_retries: int = 0


@dataclass
class DiskFaultInjector:
    """Per-disk media/servo fault source.

    One injector is bound to one disk; it keeps a per-disk media-access
    ordinal so each access's fault decision is the pure function
    ``draw(seed, disk, ordinal)``.  Because the event-driven simulation
    itself is deterministic, the ordinal sequence — and therefore the
    injected fault sequence — is identical in serial and parallel sweeps.
    """

    config: FaultConfig
    subject: str
    stats: FaultStats = field(default_factory=FaultStats)
    _ordinal: int = field(default=0, repr=False)

    def media_access_fault(
        self, mechanics: "DiskMechanics"
    ) -> Optional[InjectedFault]:
        """Fault decision for one media access (not for cache hits).

        Args:
            mechanics: the disk's timing engine; penalties derive from its
                rotation period, settle time and seek curve.

        Returns:
            The injected fault, or None when this access is healthy.
        """
        ordinal = self._ordinal
        self._ordinal = ordinal + 1
        fault = self._decide(mechanics, ordinal)
        if fault is not None:
            self.stats.extra_ms += fault.extra_ms
            self.stats.ecc_retries += fault.ecc_retries
            if fault.kind == "media_remap":
                self.stats.media_remaps += 1
            elif fault.kind == "media_retry":
                self.stats.media_retries += 1
            else:
                self.stats.servo_faults += 1
        return fault

    def _decide(
        self, mechanics: "DiskMechanics", ordinal: int
    ) -> Optional[InjectedFault]:
        cfg = self.config
        period_ms = mechanics.period_ms
        if cfg.media_rate > 0.0 and (
            unit_draw(cfg.seed, self.subject, ordinal, "media") < cfg.media_rate
        ):
            # Each ECC retry costs one full revolution (re-read the sector).
            span = unit_draw(cfg.seed, self.subject, ordinal, "retries")
            retries = 1 + int(span * cfg.max_ecc_retries)
            retries = min(retries, cfg.max_ecc_retries)
            extra = retries * period_ms
            if unit_draw(cfg.seed, self.subject, ordinal, "remap") < cfg.remap_fraction:
                # Remap: seek out to the spare pool and back, plus the
                # revolution spent rewriting the relocated sector.
                remap_travel = 2.0 * mechanics.seek_model.average_seek_ms()
                extra += remap_travel + period_ms
                return InjectedFault("media_remap", extra, ecc_retries=retries)
            return InjectedFault("media_retry", extra, ecc_retries=retries)
        if cfg.servo_rate > 0.0 and (
            unit_draw(cfg.seed, self.subject, ordinal, "servo") < cfg.servo_rate
        ):
            # Failed settle: re-settle plus on average half a revolution to
            # re-acquire the target sector.
            extra = mechanics.settle_ms + period_ms / 2.0
            return InjectedFault("servo", extra)
        return None


@dataclass
class ThermalEmergencyModel:
    """Spurious thermal-emergency source for a DTM controller.

    The per-check trigger probability is the configured base rate scaled
    by the reliability model's failure-acceleration factor at the current
    air temperature (referenced to the envelope): a drive sitting at the
    envelope faults at the base rate, one 15 °C cooler at half of it —
    the same ``2^(dT/15)`` law the paper uses for failure rates.
    """

    config: FaultConfig
    subject: str = "dtm"
    stats: FaultStats = field(default_factory=FaultStats)
    _ordinal: int = field(default=0, repr=False)

    def trigger_probability(self, air_c: float, envelope_c: float) -> float:
        """The scaled per-check probability at an air temperature."""
        rate = self.config.thermal_emergency_rate
        if rate <= 0.0:
            return 0.0
        scaled = rate * failure_acceleration(air_c, reference_c=envelope_c)
        return min(scaled, 1.0)

    def should_trigger(self, air_c: float, envelope_c: float) -> bool:
        """Deterministic per-check emergency decision."""
        ordinal = self._ordinal
        self._ordinal = ordinal + 1
        probability = self.trigger_probability(air_c, envelope_c)
        if probability <= 0.0:
            return False
        fired = (
            unit_draw(self.config.seed, self.subject, ordinal, "thermal")
            < probability
        )
        if fired:
            self.stats.thermal_emergencies += 1
        return fired
