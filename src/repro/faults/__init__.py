"""Fault injection: deterministic drive faults and thermal emergencies.

See :mod:`repro.faults.models` for the fault taxonomy and the
determinism contract, and ``docs/resilience.md`` for the user guide.
"""

from repro.faults.models import (
    FAULT_KINDS,
    DiskFaultInjector,
    FaultConfig,
    FaultStats,
    InjectedFault,
    ThermalEmergencyModel,
    unit_draw,
)

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultStats",
    "InjectedFault",
    "DiskFaultInjector",
    "ThermalEmergencyModel",
    "unit_draw",
]
