"""repro — a reproduction of "Disk Drive Roadmap from the Thermal
Perspective: A Case for Dynamic Thermal Management" (Gurumurthi,
Sivasubramaniam, Natarajan; ISCA 2005 / Penn State CSE-05-001).

An integrated disk-drive modeling library:

* :mod:`repro.capacity` — recording densities, zoned-bit recording, servo
  and ECC overheads, derated capacity (paper §3.1).
* :mod:`repro.performance` — seek curves and internal data rate (§3.2).
* :mod:`repro.thermal` — the four-node lumped thermal model, calibrated
  against the dissected Cheetah 15K.3 (§3.3).
* :mod:`repro.scaling` — technology trends and the thermally constrained
  roadmap, with cooling and form-factor sensitivity (§4).
* :mod:`repro.simulation` — an event-driven disk/array simulator (the
  DiskSim substitute) with ZBR layout, caches, schedulers and RAID-5.
* :mod:`repro.workloads` — synthetic stand-ins for the five commercial
  traces of the Figure 4 study.
* :mod:`repro.dtm` — dynamic thermal management: slack exploitation,
  dynamic throttling, multi-speed disks, and a reactive controller (§5).

Quick start::

    from repro import thermal, scaling

    # How fast can a 2.6-inch single-platter drive spin inside the
    # 45.22 C envelope?
    rpm = thermal.max_rpm_within_envelope(2.6)

    # The thermally constrained roadmap of Figure 2.
    points = scaling.thermal_roadmap(platter_count=1)
"""

import importlib
from typing import TYPE_CHECKING

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro import (  # noqa: F401
        capacity,
        constants,
        drives,
        dtm,
        errors,
        geometry,
        materials,
        performance,
        reporting,
        scaling,
        service,
        simulation,
        thermal,
        units,
        workloads,
    )

#: Subpackages resolved lazily (PEP 562).  Eager imports here would pull
#: the whole library — including the thermal solver's numpy dependency —
#: into every process that only wants the (numpy-free) exact simulation
#: path; sweep workers and numpy-less environments both care.
_SUBMODULES = frozenset(
    {
        "capacity",
        "constants",
        "drives",
        "dtm",
        "errors",
        "geometry",
        "materials",
        "performance",
        "reporting",
        "scaling",
        "service",
        "simulation",
        "thermal",
        "units",
        "workloads",
    }
)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _SUBMODULES)


__version__ = "1.0.0"

__all__ = [
    "capacity",
    "constants",
    "drives",
    "dtm",
    "errors",
    "geometry",
    "materials",
    "performance",
    "reporting",
    "scaling",
    "service",
    "simulation",
    "thermal",
    "units",
    "workloads",
    "AMBIENT_TEMPERATURE_C",
    "THERMAL_ENVELOPE_C",
    "__version__",
]
