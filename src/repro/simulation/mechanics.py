"""Mechanical timing of a disk access.

Given the head position and the platter's (continuously rotating) angular
position, computes the seek, rotational-latency, head-switch and media
transfer components of servicing a request — including multi-track and
multi-cylinder transfers with track/cylinder skew, the mechanism that lets
sequential reads continue across track boundaries without losing a whole
revolution.

Skews are derived from the head-switch and track-to-track seek times at the
configured RPM, as real drives do, so sequential throughput stays sensible
across the large RPM sweeps of the paper's Figure 4 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.performance.rotation import wait_for_angle_ms
from repro.performance.seek import SeekModel
from repro.simulation.layout import DiskLayout
from repro.units import rotation_time_ms


@dataclass
class ServiceBreakdown:
    """Timing components of one mechanical access, in milliseconds."""

    overhead_ms: float = 0.0
    seek_ms: float = 0.0
    rotational_ms: float = 0.0
    head_switch_ms: float = 0.0
    transfer_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.overhead_ms
            + self.seek_ms
            + self.rotational_ms
            + self.head_switch_ms
            + self.transfer_ms
        )


class DiskMechanics:
    """Timing engine for one disk.

    Args:
        layout: the disk's LBA mapping.
        seek_model: seek-time curve.
        rpm: spindle speed.
        head_switch_ms: time to activate an adjacent head in a cylinder.
        settle_ms: extra settle time after any seek.
        controller_overhead_ms: fixed per-request command processing.
        skew_margin_rev: extra angular margin added to computed skews.
    """

    def __init__(
        self,
        layout: DiskLayout,
        seek_model: SeekModel,
        rpm: float,
        head_switch_ms: float = 0.3,
        settle_ms: float = 0.1,
        controller_overhead_ms: float = 0.2,
        skew_margin_rev: float = 0.02,
    ) -> None:
        if rpm <= 0:
            raise SimulationError(f"rpm must be positive, got {rpm}")
        self.layout = layout
        self.seek_model = seek_model
        self.rpm = rpm
        self.head_switch_ms = head_switch_ms
        self.settle_ms = settle_ms
        self.controller_overhead_ms = controller_overhead_ms
        self.period_ms = rotation_time_ms(rpm)
        track_to_track = seek_model.parameters.track_to_track_ms + settle_ms
        self.track_skew_rev = min(0.45, head_switch_ms / self.period_ms + skew_margin_rev)
        self.cylinder_skew_rev = min(0.45, track_to_track / self.period_ms + skew_margin_rev)

    # -- angular bookkeeping ----------------------------------------------------

    def track_skew(self, cylinder: int, surface: int) -> float:
        """Angular offset (revolutions) of sector 0 on a track."""
        return (
            cylinder * self.cylinder_skew_rev + surface * self.track_skew_rev
        ) % 1.0

    def sector_angle(self, cylinder: int, surface: int, sector: int) -> float:
        """Angular position (revolutions) of the start of a sector."""
        spt = self.layout.sectors_per_track_at(cylinder)
        if not 0 <= sector < spt:
            raise SimulationError(f"sector {sector} out of range (spt {spt})")
        return (sector / spt + self.track_skew(cylinder, surface)) % 1.0

    # -- service timing -----------------------------------------------------------

    def service(
        self,
        start_ms: float,
        head_cylinder: int,
        lba: int,
        sectors: int,
    ) -> tuple:
        """Timing of a full media access.

        Args:
            start_ms: absolute time the disk starts working on the request.
            head_cylinder: cylinder the head currently sits on.
            lba: starting logical block.
            sectors: transfer length.

        Returns:
            (breakdown, final_cylinder): the timing decomposition and the
            cylinder the head ends on.
        """
        if sectors <= 0:
            raise SimulationError(f"sectors must be positive, got {sectors}")
        if lba + sectors > self.layout.total_sectors:
            raise SimulationError(
                f"access [{lba}, {lba + sectors}) exceeds disk size "
                f"{self.layout.total_sectors}"
            )
        breakdown = ServiceBreakdown(overhead_ms=self.controller_overhead_ms)
        t = start_ms + self.controller_overhead_ms
        current_cylinder = head_cylinder
        current_surface = None
        remaining = sectors
        position = lba
        first_segment = True
        while remaining > 0:
            addr = self.layout.locate(position)
            if addr.cylinder != current_cylinder:
                distance = abs(addr.cylinder - current_cylinder)
                seek = self.seek_model.seek_time_ms(distance) + self.settle_ms
                breakdown.seek_ms += seek
                t += seek
                current_cylinder = addr.cylinder
                current_surface = addr.surface
            elif current_surface is not None and addr.surface != current_surface:
                breakdown.head_switch_ms += self.head_switch_ms
                t += self.head_switch_ms
                current_surface = addr.surface
            else:
                current_surface = addr.surface
            target = self.sector_angle(addr.cylinder, addr.surface, addr.sector)
            wait = wait_for_angle_ms(t, target, self.rpm)
            if first_segment:
                breakdown.rotational_ms += wait
                first_segment = False
            else:
                # Post-switch alignment; with well-chosen skews this is small.
                breakdown.rotational_ms += wait
            t += wait
            chunk = min(remaining, addr.sectors_per_track - addr.sector)
            transfer = chunk * self.period_ms / addr.sectors_per_track
            breakdown.transfer_ms += transfer
            t += transfer
            remaining -= chunk
            position += chunk
        return breakdown, current_cylinder

    def average_access_ms(self) -> float:
        """Rule-of-thumb random access time: average seek + half rotation."""
        return self.seek_model.average_seek_ms() + self.period_ms / 2.0
