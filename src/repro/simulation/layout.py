"""Logical-to-physical mapping of a ZBR disk.

LBAs are laid out cylinder-major: within a cylinder, all of surface 0's
sectors, then surface 1's, and so on; cylinders run from the outer edge
(zone 0, fastest) inward, which is how real drives place low LBAs on the
fast outer tracks.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List

from repro.capacity.zones import ZonedSurface
from repro.errors import SimulationError


@dataclass(frozen=True)
class SectorAddress:
    """Physical location of one sector.

    Attributes:
        cylinder: track index (0 = outermost).
        surface: recording surface index.
        sector: sector index within the track.
        zone: ZBR zone index of the cylinder.
        sectors_per_track: track capacity in the containing zone.
    """

    cylinder: int
    surface: int
    sector: int
    zone: int
    sectors_per_track: int


class DiskLayout:
    """Cylinder-major LBA mapping over a zoned surface replicated across
    surfaces.

    Args:
        surface: the ZBR layout of one surface.
        surfaces: number of recording surfaces.
    """

    def __init__(self, surface: ZonedSurface, surfaces: int) -> None:
        if surfaces < 1:
            raise SimulationError(f"surfaces must be >= 1, got {surfaces}")
        self.surface = surface
        self.surfaces = surfaces
        self._zone_start_lba: List[int] = []
        self._zone_start_cyl: List[int] = []
        self._zone_spt: List[int] = []
        lba = 0
        for zone in surface.zones:
            self._zone_start_lba.append(lba)
            self._zone_start_cyl.append(zone.first_track)
            self._zone_spt.append(zone.sectors_per_track)
            lba += zone.track_count * zone.sectors_per_track * surfaces
        self.total_sectors = lba
        if self.total_sectors <= 0:
            raise SimulationError("layout has no usable sectors")
        #: lazily built numpy zone tables for :meth:`locate_batch`.
        self._numpy_tables: object = None

    @property
    def cylinders(self) -> int:
        """Number of cylinders."""
        return self.surface.cylinders

    def _zone_index(self, lba: int) -> int:
        if not 0 <= lba < self.total_sectors:
            raise SimulationError(
                f"LBA {lba} out of range [0, {self.total_sectors})"
            )
        return bisect_right(self._zone_start_lba, lba) - 1

    def locate(self, lba: int) -> SectorAddress:
        """Physical address of an LBA."""
        z = self._zone_index(lba)
        spt = self._zone_spt[z]
        per_cylinder = spt * self.surfaces
        rel = lba - self._zone_start_lba[z]
        cylinder = self._zone_start_cyl[z] + rel // per_cylinder
        rem = rel % per_cylinder
        return SectorAddress(
            cylinder=cylinder,
            surface=rem // spt,
            sector=rem % spt,
            zone=z,
            sectors_per_track=spt,
        )

    def lba_of(self, cylinder: int, surface: int, sector: int) -> int:
        """Inverse of :func:`locate`."""
        if not 0 <= cylinder < self.cylinders:
            raise SimulationError(f"cylinder {cylinder} out of range")
        if not 0 <= surface < self.surfaces:
            raise SimulationError(f"surface {surface} out of range")
        zone = self.surface.zone_of_track(cylinder)
        spt = zone.sectors_per_track
        if not 0 <= sector < spt:
            raise SimulationError(
                f"sector {sector} out of range for zone {zone.index} (spt {spt})"
            )
        z = zone.index
        rel_cyl = cylinder - self._zone_start_cyl[z]
        return (
            self._zone_start_lba[z]
            + rel_cyl * spt * self.surfaces
            + surface * spt
            + sector
        )

    def cylinder_of(self, lba: int) -> int:
        """Cylinder containing an LBA (cheaper than full :func:`locate`)."""
        return self.locate(lba).cylinder

    def _lookup_tables(self) -> tuple:
        """Per-zone numpy arrays backing :meth:`locate_batch` (lazy).

        Requires numpy; the exact simulation path never calls this, so a
        numpy-less environment can still import and run the simulator.
        """
        tables = self._numpy_tables
        if tables is None:
            import numpy as np

            tables = (
                np.asarray(self._zone_start_lba, dtype=np.int64),
                np.asarray(self._zone_start_cyl, dtype=np.int64),
                np.asarray(self._zone_spt, dtype=np.int64),
            )
            self._numpy_tables = tables
        return tables

    def locate_batch(self, lbas: "object") -> tuple:
        """Vectorized :meth:`locate` over an int array of LBAs.

        Requires numpy.  Returns ``(cylinder, surface, sector, spt)``
        int64 arrays; pure integer arithmetic, so the values agree exactly
        with element-wise :meth:`locate`.
        """
        import numpy as np

        start_lba, start_cyl, zone_spt = self._lookup_tables()
        lba = np.asarray(lbas, dtype=np.int64)
        if lba.size and (int(lba.min()) < 0 or int(lba.max()) >= self.total_sectors):
            raise SimulationError("batch LBA out of range")
        z = np.searchsorted(start_lba, lba, side="right") - 1
        spt = zone_spt[z]
        per_cylinder = spt * self.surfaces
        rel = lba - start_lba[z]
        cylinder = start_cyl[z] + rel // per_cylinder
        rem = rel % per_cylinder
        return cylinder, rem // spt, rem % spt, spt

    def sectors_per_track_at(self, cylinder: int) -> int:
        """Track capacity at a cylinder."""
        return self.surface.zone_of_track(cylinder).sectors_per_track
