"""Segmented disk buffer cache.

Models the on-drive cache the paper configures at 4 MB: a set of segments,
each holding one contiguous LBA run, managed LRU.  Reads that fall entirely
inside a segment are cache hits (served at electronic speed); misses fetch
the requested range plus a read-ahead tail into a recycled segment.  Writes
are write-through — they always reach the media — but update any overlapping
cached segments so subsequent reads stay coherent.

Lookups go through a start-sorted segment index rather than a linear scan
of every segment: bisection finds the window of segments that could contain
the queried LBA (bounded by the longest cached run), so the read path stays
cheap even with large segment counts.  Capacity is enforced both ways — by
segment count and by total cached bytes — so oversized requests cannot
inflate the cache past its configured size.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import SimulationError
from repro.units import BYTES_PER_SECTOR, MIB

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.telemetry import Telemetry


@dataclass
class CacheStats:
    """Hit/miss counters."""

    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def hit_ratio(self) -> float:
        return self.read_hits / self.lookups if self.lookups else 0.0


class DiskCache:
    """Segmented LRU cache over LBA ranges.

    Args:
        size_bytes: total cache capacity (paper: 4 MB).
        segments: number of segments the capacity is divided into.
        read_ahead_sectors: sectors prefetched past each missed read.
    """

    def __init__(
        self,
        size_bytes: int = 4 * MIB,
        segments: int = 16,
        read_ahead_sectors: int = 64,
    ) -> None:
        if size_bytes <= 0:
            raise SimulationError(f"cache size must be positive, got {size_bytes}")
        if segments < 1:
            raise SimulationError(f"segment count must be >= 1, got {segments}")
        if read_ahead_sectors < 0:
            raise SimulationError("read-ahead cannot be negative")
        self.capacity_sectors = max(size_bytes // BYTES_PER_SECTOR, 1)
        self.segment_sectors = max(size_bytes // BYTES_PER_SECTOR // segments, 1)
        self.max_segments = segments
        self.read_ahead_sectors = read_ahead_sectors
        #: segment id -> (start_lba, length); OrderedDict gives LRU order.
        self._segments: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        #: start-sorted (start_lba, segment id) pairs for bisect lookups.
        self._index: List[Tuple[int, int]] = []
        #: longest cached run, bounding the lookup window; None = recompute.
        self._max_length: Optional[int] = 0
        self._cached_sectors = 0
        self._next_id = 0
        #: segment id -> monotonically increasing last-use stamp (LRU order).
        self._use_stamps: dict = {}
        self._stamp_counter = 0
        self.stats = CacheStats()
        #: set by :meth:`bind_telemetry`; None keeps the hot path free.
        self._tel: Optional["Telemetry"] = None
        self._subject = ""

    def bind_telemetry(self, telemetry: Optional["Telemetry"], subject: str) -> None:
        """Mirror hit/miss/eviction activity into a telemetry registry.

        Trace events for hits and misses are recorded by the owning disk
        (which knows the simulated clock); the cache itself only feeds
        counters, so binding costs nothing on the lookup path beyond the
        existing stats increments plus one guarded counter bump.
        """
        from repro.telemetry import maybe

        self._tel = maybe(telemetry)
        self._subject = subject

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def cached_sectors(self) -> int:
        """Total sectors currently held across all segments."""
        return self._cached_sectors

    @property
    def cached_bytes(self) -> int:
        """Total bytes currently held across all segments."""
        return self._cached_sectors * BYTES_PER_SECTOR

    def _containing_segment(self, lba: int, sectors: int) -> Optional[int]:
        """Id of the least-recently-used segment containing the range.

        Only segments whose start lies in ``(lba - max_length, lba]`` can
        contain ``lba``, so the scan walks backwards from the bisection
        point through that bounded window.  Among multiple containing
        segments (overlapping fills) the least recently used one is
        returned — the same segment the original front-to-back LRU scan
        found — so hit accounting and eviction order are unchanged.
        """
        if not self._index:
            return None
        if self._max_length is None:
            self._max_length = max(length for _, length in self._segments.values())
        end = lba + sectors
        best_id: Optional[int] = None
        position = bisect.bisect_right(self._index, (lba, float("inf")))
        floor = lba - self._max_length
        for k in range(position - 1, -1, -1):
            start, seg_id = self._index[k]
            if start <= floor:
                break
            length = self._segments[seg_id][1]
            if start <= lba and end <= start + length:
                if best_id is None or self._lru_rank(seg_id) < self._lru_rank(best_id):
                    best_id = seg_id
        return best_id

    def _lru_rank(self, seg_id: int) -> int:
        return self._use_stamps[seg_id]

    def contains(self, lba: int, sectors: int) -> bool:
        """Whether [lba, lba+sectors) lies entirely inside one segment."""
        return self._containing_segment(lba, sectors) is not None

    def lookup_read(self, lba: int, sectors: int) -> bool:
        """Read-path lookup: records a hit or miss and refreshes LRU."""
        if sectors <= 0:
            raise SimulationError(f"sectors must be positive, got {sectors}")
        seg_id = self._containing_segment(lba, sectors)
        if seg_id is not None:
            self._segments.move_to_end(seg_id)
            self._use_stamps[seg_id] = self._next_stamp()
            self.stats.read_hits += 1
            if self._tel is not None:
                self._tel.count(f"{self._subject}.cache_hits")
            return True
        self.stats.read_misses += 1
        if self._tel is not None:
            self._tel.count(f"{self._subject}.cache_misses")
        return False

    # -- fills and writes -----------------------------------------------------------

    def fill_after_read(self, lba: int, sectors: int, disk_sectors: int) -> Tuple[int, int]:
        """Install the segment fetched on a read miss.

        Args:
            lba: requested start; must lie on the disk.
            sectors: requested length; must be positive.
            disk_sectors: total disk size (read-ahead is clipped to it).

        Returns:
            The (start, length) actually fetched — request plus read-ahead,
            truncated to the segment size, the end of the disk, and the
            total cache capacity.

        Raises:
            SimulationError: if the request starts off the end of the disk
                (which would previously install a zero/negative-length
                segment) or ``sectors`` is not positive.
        """
        if sectors <= 0:
            raise SimulationError(f"sectors must be positive, got {sectors}")
        if disk_sectors <= 0:
            raise SimulationError(f"disk size must be positive, got {disk_sectors}")
        if not 0 <= lba < disk_sectors:
            raise SimulationError(
                f"fill at LBA {lba} lies outside the disk ({disk_sectors} sectors)"
            )
        length = min(
            sectors + self.read_ahead_sectors,
            self.segment_sectors,
            disk_sectors - lba,
        )
        # A request larger than one segment is still cached whole (the
        # drive streamed it through the buffer) — but never beyond the
        # total capacity or the end of the disk.
        length = max(length, min(sectors, disk_sectors - lba))
        length = min(length, self.capacity_sectors)
        self._install(lba, length)
        return lba, length

    def note_write(self, lba: int, sectors: int) -> None:
        """Write-through bookkeeping: keep overlapping segments coherent.

        Overlapping cached segments are truncated (or dropped) rather than
        updated in place — a conservative model of drives that invalidate on
        write — except when the write lies wholly inside a segment, which is
        treated as updated data and kept.
        """
        if sectors <= 0:
            raise SimulationError(f"sectors must be positive, got {sectors}")
        self.stats.writes += 1
        end = lba + sectors
        doomed = []
        for seg_id, (start, length) in self._segments.items():
            seg_end = start + length
            if start <= lba and end <= seg_end:
                continue  # interior update: segment stays valid
            if start < end and lba < seg_end:
                doomed.append(seg_id)
        for seg_id in doomed:
            self._evict(seg_id)

    # -- internals -----------------------------------------------------------------

    def _next_stamp(self) -> int:
        self._stamp_counter += 1
        return self._stamp_counter

    def _evict(self, seg_id: int) -> None:
        start, length = self._segments.pop(seg_id)
        self._index.remove((start, seg_id))
        self._use_stamps.pop(seg_id, None)
        self._cached_sectors -= length
        self.stats.evictions += 1
        if self._tel is not None:
            self._tel.count(f"{self._subject}.cache_evictions")
        if self._max_length is not None and length >= self._max_length:
            self._max_length = None  # recompute lazily on next lookup

    def _install(self, start: int, length: int) -> None:
        while self._segments and (
            len(self._segments) >= self.max_segments
            or self._cached_sectors + length > self.capacity_sectors
        ):
            oldest_id = next(iter(self._segments))
            self._evict(oldest_id)
        seg_id = self._next_id
        self._next_id += 1
        self._segments[seg_id] = (start, length)
        bisect.insort(self._index, (start, seg_id))
        self._use_stamps[seg_id] = self._next_stamp()
        self._cached_sectors += length
        if self._max_length is not None and length > self._max_length:
            self._max_length = length

    def clear(self) -> None:
        """Drop all cached segments (stats are kept)."""
        self._segments.clear()
        self._index.clear()
        self._use_stamps.clear()
        self._cached_sectors = 0
        self._max_length = 0
