"""Segmented disk buffer cache.

Models the on-drive cache the paper configures at 4 MB: a set of segments,
each holding one contiguous LBA run, managed LRU.  Reads that fall entirely
inside a segment are cache hits (served at electronic speed); misses fetch
the requested range plus a read-ahead tail into a recycled segment.  Writes
are write-through — they always reach the media — but update any overlapping
cached segments so subsequent reads stay coherent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SimulationError
from repro.units import BYTES_PER_SECTOR


@dataclass
class CacheStats:
    """Hit/miss counters."""

    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def hit_ratio(self) -> float:
        return self.read_hits / self.lookups if self.lookups else 0.0


class DiskCache:
    """Segmented LRU cache over LBA ranges.

    Args:
        size_bytes: total cache capacity (paper: 4 MB).
        segments: number of segments the capacity is divided into.
        read_ahead_sectors: sectors prefetched past each missed read.
    """

    def __init__(
        self,
        size_bytes: int = 4 * 1024 * 1024,
        segments: int = 16,
        read_ahead_sectors: int = 64,
    ) -> None:
        if size_bytes <= 0:
            raise SimulationError(f"cache size must be positive, got {size_bytes}")
        if segments < 1:
            raise SimulationError(f"segment count must be >= 1, got {segments}")
        if read_ahead_sectors < 0:
            raise SimulationError("read-ahead cannot be negative")
        self.segment_sectors = max(size_bytes // BYTES_PER_SECTOR // segments, 1)
        self.max_segments = segments
        self.read_ahead_sectors = read_ahead_sectors
        #: segment id -> (start_lba, length); OrderedDict gives LRU order.
        self._segments: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self._next_id = 0
        self.stats = CacheStats()

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def contains(self, lba: int, sectors: int) -> bool:
        """Whether [lba, lba+sectors) lies entirely inside one segment."""
        end = lba + sectors
        for start, length in self._segments.values():
            if start <= lba and end <= start + length:
                return True
        return False

    def lookup_read(self, lba: int, sectors: int) -> bool:
        """Read-path lookup: records a hit or miss and refreshes LRU."""
        if sectors <= 0:
            raise SimulationError(f"sectors must be positive, got {sectors}")
        end = lba + sectors
        for seg_id, (start, length) in self._segments.items():
            if start <= lba and end <= start + length:
                self._segments.move_to_end(seg_id)
                self.stats.read_hits += 1
                return True
        self.stats.read_misses += 1
        return False

    # -- fills and writes -----------------------------------------------------------

    def fill_after_read(self, lba: int, sectors: int, disk_sectors: int) -> Tuple[int, int]:
        """Install the segment fetched on a read miss.

        Args:
            lba: requested start.
            sectors: requested length.
            disk_sectors: total disk size (read-ahead is clipped to it).

        Returns:
            The (start, length) actually fetched — request plus read-ahead,
            truncated to the segment size and to the end of the disk.
        """
        length = min(
            sectors + self.read_ahead_sectors,
            self.segment_sectors,
            disk_sectors - lba,
        )
        length = max(length, min(sectors, disk_sectors - lba))
        self._install(lba, length)
        return lba, length

    def note_write(self, lba: int, sectors: int) -> None:
        """Write-through bookkeeping: keep overlapping segments coherent.

        Overlapping cached segments are truncated (or dropped) rather than
        updated in place — a conservative model of drives that invalidate on
        write — except when the write lies wholly inside a segment, which is
        treated as updated data and kept.
        """
        if sectors <= 0:
            raise SimulationError(f"sectors must be positive, got {sectors}")
        self.stats.writes += 1
        end = lba + sectors
        doomed = []
        for seg_id, (start, length) in self._segments.items():
            seg_end = start + length
            if start <= lba and end <= seg_end:
                continue  # interior update: segment stays valid
            if start < end and lba < seg_end:
                doomed.append(seg_id)
        for seg_id in doomed:
            del self._segments[seg_id]

    def _install(self, start: int, length: int) -> None:
        while len(self._segments) >= self.max_segments:
            self._segments.popitem(last=False)
        self._segments[self._next_id] = (start, length)
        self._next_id += 1

    def clear(self) -> None:
        """Drop all cached segments (stats are kept)."""
        self._segments.clear()
