"""Fast simulation engines: vectorized batch replay and analytic estimator.

The event-driven simulator (`repro.simulation.system`) is the *exact*
engine: every request is an event, every seek/rotation/transfer is
computed scalar by scalar.  That costs roughly a second per 6000-request
replay — fine for one Figure 4 ladder, painful for the thousands of
(RPM, platter, workload) points the roadmap experiments sweep.  This
module adds two faster engines behind the same task interface:

* **vectorized** — the same simulation, restructured: all per-request
  geometry (LBA→CHS chunks, skewed target angles, transfer times, seek
  distances) is precomputed with numpy over the whole trace at once, and
  a lean event loop replays dispatch/completion using those tables plus
  the real per-disk :class:`~repro.simulation.cache.DiskCache` objects.
  Every floating-point operation the exact engine performs is replicated
  in the same order, so the resulting statistics are **byte-identical**
  to the exact engine's (the differential suite asserts it).

* **analytic** — no event loop at all: a closed-form G/G/1 approximation
  (Allen–Cunneen, the two-moment generalization of M/G/1
  Pollaczek–Khinchine) per member disk.  Service-time moments come from
  the same vectorized geometry (real per-request seek distances under
  FCFS, expected half-rotation latency, zone-aware transfer times);
  arrival moments come from the actual generated trace.  The estimate is
  approximate by construction — the tolerance contract lives in the
  ``ANALYTIC_*`` constants below and in ``docs/fastpath.md``.

Engine selection (``decide_engine``) is static and cheap: fault
injection, telemetry, or RAID-5 phased plans force the exact engine;
high sequentiality or high estimated utilization additionally refuse the
analytic engine (its steady-state open-queue assumptions break).  An
explicit ``--engine analytic`` request that cannot be honored raises
:class:`EngineRefused`; ``--engine vectorized`` and ``--engine auto``
fall back silently (the result's ``engine`` field records what actually
ran).

numpy is required by both fast engines but is **not** imported at module
import time: the exact path must import and run in a numpy-less
environment (CI checks this).
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.units import (
    BYTES_PER_SECTOR,
    interface_mb_per_s_to_bytes_per_s,
    rotation_time_ms,
    seconds_to_ms,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.simulation.sweep import WorkloadSweepResult, WorkloadTask

#: The engine names accepted by tasks and the CLI.
ENGINES: Tuple[str, ...] = ("exact", "vectorized", "analytic", "auto")

#: Tolerance contract of the analytic engine, relative to the exact
#: engine on *qualifying* tasks (see docs/fastpath.md).  The differential
#: suite enforces these bounds across the workload catalog.
ANALYTIC_MEAN_RTOL = 0.35
ANALYTIC_P95_RTOL = 0.75
ANALYTIC_UTILIZATION_ATOL = 0.15
ANALYTIC_HIT_RATIO_ATOL = 0.30

#: Analytic qualification limits: workloads more sequential than this
#: are cache/skew-dominated, and estimated per-disk utilization beyond
#: the static limit (or, at runtime, the hard limit) has no steady state
#: the open-queue formula can describe.
ANALYTIC_MAX_SEQUENTIAL = 0.30
ANALYTIC_MAX_RHO_STATIC = 0.90
ANALYTIC_MAX_RHO_RUNTIME = 0.95

#: Bus rate of the simulated member disks (SimulatedDisk default).
_BUS_MB_PER_S = 160.0
#: Electronic service time of a cache hit (disk.CACHE_HIT_MS).
_CACHE_HIT_MS = 0.1


class EngineRefused(SimulationError):
    """An explicitly requested fast engine cannot honor this task."""


def have_numpy() -> bool:
    """Whether the fast engines' numpy dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def validate_engine(engine: str) -> str:
    """Check an engine name (raises :class:`SimulationError`)."""
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    return engine


# ---------------------------------------------------------------------------
# Shared per-workload geometry (all rpm-independent, so memoized once)
# ---------------------------------------------------------------------------

_GEOMETRY_CACHE: Dict[str, dict] = {}


def _workload_geometry(name: str) -> dict:
    """Memoized rpm-independent geometry of a catalog workload's array.

    Builds one member disk (they are identical) and keeps its layout,
    seek model, full seek-distance table and the array geometry object;
    every task for this workload — at any RPM — reuses them.
    """
    cached = _GEOMETRY_CACHE.get(name)
    if cached is not None:
        return cached
    from repro.workloads import workload as lookup

    spec = lookup(name)
    system = spec.build_system()
    disk = system.disks[0]
    cached = {
        "spec": spec,
        "layout": disk.layout,
        "seek_model": disk.seek_model,
        "geometry": system.array.geometry,
        "logical_sectors": system.array.logical_sectors,
        "disk_count": len(system.disks),
        "seek_table": None,  # filled lazily (needs numpy)
    }
    # Per-process memo of a pure builder: every process computes identical
    # values for a given name, so copies cannot diverge observably.
    # thermolint: disable=TL012
    _GEOMETRY_CACHE[name] = cached
    return cached


def _seek_table(geo: dict) -> "object":
    """Seek-time table over every cylinder distance (bit-equal to the
    scalar :meth:`SeekModel.seek_time_ms`), cached per workload."""
    table = geo["seek_table"]
    if table is None:
        import numpy as np

        model = geo["seek_model"]
        table = model.seek_time_ms_batch(np.arange(model.cylinders, dtype=np.int64))
        geo["seek_table"] = table
    return table


#: Memoized traces, keyed (workload, requests, seed).  An RPM ladder
#: replays the *same* trace at every rung (trace generation is
#: RPM-independent), and generating it is the dominant cost of the
#: analytic engine — so a small FIFO cache turns a 99-point ladder's 99
#: generations into one.
_TRACE_CACHE: Dict[Tuple[str, int, int], object] = {}
_TRACE_CACHE_MAX = 8


def _generate_trace(task: "WorkloadTask", geo: dict):
    """The task's trace, generated without rebuilding the storage system.

    Identical to ``spec.generate(...)`` — same shape, same capacity, same
    seed — but reuses the memoized logical capacity instead of building a
    throwaway system per point, and caches the result across the RPM
    ladder.
    """
    key = (task.workload, task.requests, task.seed)
    # Pure memo keyed on the full task identity: regeneration in any
    # process yields a bit-identical trace, so divergence is impossible.
    # thermolint: disable=TL012
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        from repro.workloads.synthetic import generate_trace

        trace = generate_trace(
            shape=geo["spec"].shape,
            num_requests=task.requests,
            capacity_sectors=geo["logical_sectors"],
            seed=task.seed,
        )
        while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
    return trace


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


def vectorized_refusal(task: "WorkloadTask") -> Optional[str]:
    """Why the vectorized engine cannot run this task (None = it can)."""
    if task.fault_config is not None:
        return "fault injection requires the exact engine"
    if task.telemetry:
        return "telemetry instrumentation requires the exact engine"
    spec = _workload_geometry(task.workload)["spec"]
    if spec.raid5:
        return "RAID-5 phased plans are exact-only"
    if not have_numpy():
        return "numpy is not available"
    return None


def analytic_refusal(task: "WorkloadTask") -> Optional[str]:
    """Why the analytic engine cannot run this task (None = it can)."""
    if task.fault_config is not None:
        return "fault injection requires the exact engine"
    if task.telemetry:
        return "telemetry instrumentation requires the exact engine"
    if task.keep_samples:
        return "the analytic engine has no per-request samples to keep"
    geo = _workload_geometry(task.workload)
    spec = geo["spec"]
    if spec.raid5:
        return "RAID-5 read-modify-write phases are not modeled analytically"
    if spec.shape.sequential_fraction > ANALYTIC_MAX_SEQUENTIAL:
        return (
            f"sequential fraction {spec.shape.sequential_fraction:.2f} exceeds "
            f"{ANALYTIC_MAX_SEQUENTIAL:.2f} (cache/skew-dominated)"
        )
    rho = _estimate_rho(task, geo)
    if rho > ANALYTIC_MAX_RHO_STATIC:
        return (
            f"estimated per-disk utilization {rho:.2f} exceeds "
            f"{ANALYTIC_MAX_RHO_STATIC:.2f} (no usable steady state)"
        )
    if not have_numpy():
        return "numpy is not available"
    return None


def _estimate_rho(task: "WorkloadTask", geo: dict) -> float:
    """Shape-level per-disk utilization estimate (no trace generation)."""
    spec = geo["spec"]
    layout = geo["layout"]
    model = geo["seek_model"]
    period = rotation_time_ms(task.rpm)
    sizes, weights = zip(*spec.shape.size_mix)
    mean_sectors = sum(s * w for s, w in zip(sizes, weights)) / sum(weights)
    mean_spt = layout.total_sectors / (layout.cylinders * layout.surfaces)
    service = (
        0.2  # controller overhead
        + model.average_seek_ms()
        + 0.1  # settle
        + period / 2.0
        + mean_sectors * period / mean_spt
        + seconds_to_ms(
            mean_sectors
            * BYTES_PER_SECTOR
            / interface_mb_per_s_to_bytes_per_s(_BUS_MB_PER_S)
        )
    )
    per_disk_rate = 1.0 / (spec.shape.mean_interarrival_ms * geo["disk_count"])
    return per_disk_rate * service


def decide_engine(task: "WorkloadTask") -> str:
    """The engine a task will actually run on (static, cheap, pure).

    ``exact`` always honors.  ``vectorized`` falls back to ``exact`` when
    it cannot honor the task (fallbacks are recorded in the result's
    ``engine`` field).  ``analytic`` raises :class:`EngineRefused` rather
    than silently answering with a different model.  ``auto`` prefers
    analytic, then vectorized, then exact.
    """
    engine = validate_engine(getattr(task, "engine", "exact"))
    if engine == "exact":
        return "exact"
    if engine == "vectorized":
        return "exact" if vectorized_refusal(task) is not None else "vectorized"
    if engine == "analytic":
        reason = analytic_refusal(task)
        if reason is not None:
            raise EngineRefused(
                f"analytic engine refused for {task.label()}: {reason}"
            )
        return "analytic"
    # auto
    if analytic_refusal(task) is None:
        return "analytic"
    if vectorized_refusal(task) is None:
        return "vectorized"
    return "exact"


def planned_engines(tasks: Sequence["WorkloadTask"]) -> Optional[List[str]]:
    """Planned engine per task, or None when planning itself refuses.

    Used by the sweep front-ends to decide whether a process pool is
    worth spawning; a refusal is deliberately *not* raised here — the
    per-task worker raises it so resilient sweeps get per-task outcomes.
    """
    try:
        return [decide_engine(task) for task in tasks]
    except EngineRefused:
        return None


def all_analytic(tasks: Sequence["WorkloadTask"]) -> bool:
    """True when *every* task plans onto the closed-form analytic engine.

    Such a sweep finishes in milliseconds of arithmetic; the sweep
    planner (:func:`repro.simulation.sweep.plan_sweep_workers`) forces it
    serial so no execution backend spawns processes for it.  Tasks that
    request ``exact`` (the common case) short-circuit to False without
    planning anything.
    """
    if not tasks or any(task.engine == "exact" for task in tasks):
        return False
    planned = planned_engines(tasks)
    return planned is not None and all(p == "analytic" for p in planned)


def run_fast_task(task: "WorkloadTask") -> Optional["WorkloadSweepResult"]:
    """Run a task on its planned fast engine.

    Returns None when the plan (or a runtime refusal under ``auto``)
    lands on the exact engine — the caller then runs the event-driven
    simulator.  Raises :class:`EngineRefused` only for an explicit
    ``analytic`` request that cannot be honored.
    """
    engine = decide_engine(task)
    if engine == "exact":
        return None
    if engine == "analytic":
        try:
            return run_workload_task_analytic(task)
        except EngineRefused:
            if task.engine == "analytic":
                raise
            if vectorized_refusal(task) is None:
                return run_workload_task_vectorized(task)
            return None
    return run_workload_task_vectorized(task)


# ---------------------------------------------------------------------------
# Vectorized exact replay
# ---------------------------------------------------------------------------


class _PlanShim:
    """Just enough of a Request for ``ArrayGeometry.plan``."""

    __slots__ = ("lba", "sectors", "is_write")

    def __init__(self, lba: int, sectors: int, is_write: bool) -> None:
        self.lba = lba
        self.sectors = sectors
        self.is_write = is_write

    @property
    def end_lba(self) -> int:
        return self.lba + self.sectors


def _chunk_geometry(np, layout, child_lba, child_sectors):
    """CSR chunk decomposition of every child access at once.

    Iterates over chunk *depth* (a child touching k tracks contributes to
    the first k rounds) while staying vectorized across children — the
    same walk ``DiskMechanics.service`` does one chunk at a time.

    Returns ``(offsets, cyl, surf, sec, spt, length)``: child ``i`` owns
    chunk rows ``offsets[i]:offsets[i+1]`` in media order.
    """
    n = int(child_lba.size)
    pos = child_lba.astype(np.int64, copy=True)
    remaining = child_sectors.astype(np.int64, copy=True)
    active = np.arange(n, dtype=np.int64)
    rounds = []
    counts = np.zeros(n, dtype=np.int64)
    while active.size:
        cyl, surf, sec, spt = layout.locate_batch(pos[active])
        chunk = np.minimum(remaining[active], spt - sec)
        rounds.append((active, cyl, surf, sec, spt, chunk))
        counts[active] += 1
        pos[active] += chunk
        remaining[active] -= chunk
        active = active[remaining[active] > 0]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    out = tuple(np.empty(total, dtype=np.int64) for _ in range(5))
    for depth, (idx, cyl, surf, sec, spt, chunk) in enumerate(rounds):
        at = offsets[idx] + depth
        out[0][at] = cyl
        out[1][at] = surf
        out[2][at] = sec
        out[3][at] = spt
        out[4][at] = chunk
    return (offsets,) + out


def run_workload_task_vectorized(task: "WorkloadTask") -> "WorkloadSweepResult":
    """Replay a task through the lean vectorized engine.

    Produces statistics byte-identical to the exact engine: the event
    order (the exact queue's ``(time, insertion-seq)`` tie-break), the
    cache state machine (real :class:`DiskCache` instances) and every
    float operation of the mechanical model are replicated exactly —
    only the object plumbing of the event-driven simulator is gone.
    """
    import numpy as np

    from repro.simulation.cache import DiskCache
    from repro.simulation.mechanics import DiskMechanics
    from repro.simulation.statistics import ResponseTimeStats
    from repro.simulation.sweep import WorkloadSweepResult

    geo = _workload_geometry(task.workload)
    layout = geo["layout"]
    geometry = geo["geometry"]
    disk_count = geo["disk_count"]
    mech = DiskMechanics(layout, geo["seek_model"], task.rpm)
    trace = _generate_trace(task, geo)

    # -- decompose the trace into per-disk child accesses -----------------
    arrivals: List[float] = []
    child_disk: List[int] = []
    child_lba: List[int] = []
    child_sectors: List[int] = []
    child_write: List[bool] = []
    child_logical: List[int] = []
    children_of: List[List[int]] = []
    for li, record in enumerate(trace):
        arrivals.append(record.time_ms)
        plan = geometry.plan(_PlanShim(record.lba, record.sectors, record.is_write))
        if len(plan.phases) != 1:  # pragma: no cover - Raid0 is single-phase
            raise EngineRefused("multi-phase plans require the exact engine")
        mine: List[int] = []
        for child in plan.phases[0]:
            mine.append(len(child_disk))
            child_disk.append(child.disk)
            child_lba.append(child.lba)
            child_sectors.append(child.sectors)
            child_write.append(child.is_write)
            child_logical.append(li)
        children_of.append(mine)

    # -- vectorized chunk geometry and timing tables ----------------------
    c_lba = np.asarray(child_lba, dtype=np.int64)
    c_sectors = np.asarray(child_sectors, dtype=np.int64)
    offsets, k_cyl, k_surf, k_sec, k_spt, k_len = _chunk_geometry(
        np, layout, c_lba, c_sectors
    )
    # Target angle of each chunk's first sector: sector fraction plus the
    # track skew — the exact expression DiskMechanics.sector_angle uses.
    skew = np.mod(
        k_cyl * mech.cylinder_skew_rev + k_surf * mech.track_skew_rev, 1.0
    )
    k_target = np.mod(k_sec / k_spt + skew, 1.0)
    k_transfer = k_len * mech.period_ms / k_spt
    # Transitions *within* a child (chunk 2..k): a one-cylinder seek or a
    # head switch, known statically.  First chunks are masked out — their
    # seek depends on the dynamic head position at dispatch time.
    total_chunks = int(offsets[-1])
    first_mask = np.zeros(total_chunks, dtype=bool)
    first_mask[offsets[:-1]] = True
    prev_cyl = np.empty(total_chunks, dtype=np.int64)
    prev_surf = np.empty(total_chunks, dtype=np.int64)
    if total_chunks:
        prev_cyl[0] = 0
        prev_cyl[1:] = k_cyl[:-1]
        prev_surf[0] = 0
        prev_surf[1:] = k_surf[:-1]
    dcy = np.abs(k_cyl - prev_cyl)
    seek_table = _seek_table(geo)
    pre_seek = np.where(
        (~first_mask) & (dcy > 0),
        seek_table[np.minimum(dcy, seek_table.size - 1)] + mech.settle_ms,
        0.0,
    )
    pre_switch = (~first_mask) & (dcy == 0) & (k_surf != prev_surf)
    bytes_per_s = interface_mb_per_s_to_bytes_per_s(_BUS_MB_PER_S)
    c_bus = seconds_to_ms(c_sectors * BYTES_PER_SECTOR / bytes_per_s)

    # Python lists index faster than numpy scalars in the replay loop.
    off_l = offsets.tolist()
    cyl_l = k_cyl.tolist()
    tgt_l = k_target.tolist()
    tr_l = k_transfer.tolist()
    pre_seek_l = pre_seek.tolist()
    pre_switch_l = pre_switch.tolist()
    seek_l = seek_table.tolist()
    bus_l = c_bus.tolist()
    lba_l = c_lba.tolist()
    sec_l = c_sectors.tolist()

    period = mech.period_ms
    overhead = mech.controller_overhead_ms
    settle = mech.settle_ms
    head_switch = mech.head_switch_ms
    total_sectors = layout.total_sectors

    # -- lean replay (exact event semantics) ------------------------------
    heads = [0] * disk_count
    busy = [False] * disk_count
    busy_ms = [0.0] * disk_count
    queues = [deque() for _ in range(disk_count)]
    caches = [DiskCache() for _ in range(disk_count)]
    outstanding = [len(mine) for mine in children_of]
    samples: List[float] = []
    n = len(arrivals)
    # Heap entries mirror the exact queue: (time, seq, is_finish, a, b).
    # schedule_batch hands arrivals seqs 0..n-1 in trace order, then every
    # completion takes the next seq at schedule time — replicated here.
    heap: List[Tuple[float, int, int, int, int]] = [
        (arrivals[i], i, 0, i, 0) for i in range(n)
    ]
    heapify(heap)
    counter = n
    now = 0.0

    def service_ms(ci: int, disk: int) -> float:
        """_service_time of the exact disk, using the precomputed tables."""
        bus = bus_l[ci]
        cache = caches[disk]
        if child_write[ci]:
            cache.note_write(lba_l[ci], sec_l[ci])
        elif cache.lookup_read(lba_l[ci], sec_l[ci]):
            return _CACHE_HIT_MS + bus
        a = off_l[ci]
        b = off_l[ci + 1]
        t = now + overhead
        seek_sum = 0.0
        rot_sum = 0.0
        switch_sum = 0.0
        transfer_sum = 0.0
        c0 = cyl_l[a]
        head = heads[disk]
        if c0 != head:
            s = seek_l[c0 - head if c0 > head else head - c0] + settle
            seek_sum += s
            t += s
        for j in range(a, b):
            if j > a:
                ps = pre_seek_l[j]
                # 0.0 is the "no transition" sentinel (real seeks include
                # the strictly positive settle time), so exact compare is right
                if ps != 0.0:  # thermolint: disable=TL002
                    seek_sum += ps
                    t += ps
                elif pre_switch_l[j]:
                    switch_sum += head_switch
                    t += head_switch
            cur = (t / period) % 1.0
            delta = (tgt_l[j] - cur) % 1.0
            if delta >= 1.0:
                delta = 0.0
            wait = delta * period
            rot_sum += wait
            t += wait
            x = tr_l[j]
            transfer_sum += x
            t += x
        heads[disk] = cyl_l[b - 1]
        if not child_write[ci]:
            cache.fill_after_read(lba_l[ci], sec_l[ci], total_sectors)
        total = overhead + seek_sum + rot_sum + switch_sum + transfer_sum
        return total + bus

    def begin(ci: int, disk: int) -> None:
        nonlocal counter
        service = service_ms(ci, disk)
        busy_ms[disk] += service
        busy[disk] = True
        heappush(heap, (now + service, counter, 1, disk, ci))
        counter += 1

    while heap:
        t, _, is_finish, a, b = heappop(heap)
        if t > now:
            now = t
        if is_finish:
            li = child_logical[b]
            outstanding[li] -= 1
            if outstanding[li] == 0:
                samples.append(now - arrivals[li])
            queue = queues[a]
            if queue:
                begin(queue.popleft(), a)
            else:
                busy[a] = False
        else:
            for ci in children_of[a]:
                disk = child_disk[ci]
                if busy[disk]:
                    queues[disk].append(ci)
                else:
                    begin(ci, disk)

    if len(samples) != n:  # pragma: no cover - defensive
        raise SimulationError(
            f"{n - len(samples)} logical requests never completed"
        )
    stats = ResponseTimeStats(samples_ms=samples)
    elapsed = now
    utilizations = [
        min(ms / elapsed, 1.0) if elapsed > 0 else 0.0 for ms in busy_ms
    ]
    hits = sum(c.stats.read_hits for c in caches)
    lookups = sum(c.stats.lookups for c in caches)
    return WorkloadSweepResult(
        workload=task.workload,
        rpm=task.rpm,
        requests=stats.count,
        seed=task.seed,
        mean_ms=stats.mean_ms(),
        median_ms=stats.median_ms(),
        p95_ms=stats.percentile_ms(95),
        max_ms=stats.max_ms(),
        simulated_ms=elapsed,
        max_utilization=max(utilizations),
        cache_hit_ratio=hits / lookups if lookups else 0.0,
        cdf=tuple(stats.cdf()),
        samples_ms=tuple(stats.samples_ms) if task.keep_samples else (),
        telemetry=None,
        fault_summary=None,
        engine="vectorized",
    )


# ---------------------------------------------------------------------------
# Analytic estimator
# ---------------------------------------------------------------------------


def run_workload_task_analytic(task: "WorkloadTask") -> "WorkloadSweepResult":
    """Estimate a task's statistics in closed form (no event loop).

    Per member disk: the first two service-time moments come from the
    vectorized geometry (FCFS head movement over the actual per-disk
    request sequence, expected half-rotation latency, zone-aware
    transfer, bus); the Allen–Cunneen G/G/1 approximation then gives the
    mean queueing delay ``Wq ≈ (Ca²+Cs²)/2 · ρ/(1−ρ) · E[S]``.  The
    response-time distribution is approximated by the per-request service
    times shifted by their disk's ``Wq``.

    Raises:
        EngineRefused: when any disk's utilization reaches
            ``ANALYTIC_MAX_RHO_RUNTIME`` (the open queue has no steady
            state to summarize).
    """
    import numpy as np

    from repro.simulation.statistics import (
        cdf_batch,
        percentiles_batch,
    )
    from repro.simulation.sweep import WorkloadSweepResult

    geo = _workload_geometry(task.workload)
    layout = geo["layout"]
    geometry = geo["geometry"]
    disk_count = geo["disk_count"]
    trace = _generate_trace(task, geo)
    n = len(trace)
    arrival = np.fromiter((r.time_ms for r in trace), dtype=np.float64, count=n)
    lba = np.fromiter((r.lba for r in trace), dtype=np.int64, count=n)
    sectors = np.fromiter((r.sectors for r in trace), dtype=np.int64, count=n)

    # Single-unit placement: the request is charged to the disk holding
    # its first stripe unit (requests straddling a unit boundary are rare
    # at the catalog's coarse non-RAID striping; see docs/fastpath.md).
    su = geometry.stripe_unit
    unit = lba // su
    disk = (unit % disk_count).astype(np.int64)
    plba = (unit // disk_count) * su + (lba % su)
    end = np.minimum(plba + sectors - 1, layout.total_sectors - 1)
    cyl, _, _, spt = layout.locate_batch(plba)
    end_cyl, _, _, _ = layout.locate_batch(end)

    # FCFS per-disk service order equals arrival order, so the seek
    # sequence is cylinder-to-cylinder along each disk's request stream.
    distance = np.zeros(n, dtype=np.int64)
    for d in range(disk_count):
        mask = disk == d
        k = int(mask.sum())
        if k == 0:
            continue
        start_cyls = cyl[mask]
        prev = np.empty(k, dtype=np.int64)
        prev[0] = 0  # heads park on cylinder 0
        prev[1:] = end_cyl[mask][:-1]
        distance[mask] = np.abs(start_cyls - prev)
    seek_table = _seek_table(geo)
    period = rotation_time_ms(task.rpm)
    seek = np.where(distance > 0, seek_table[distance] + 0.1, 0.0)
    transfer = sectors * period / spt
    bus = seconds_to_ms(
        sectors * BYTES_PER_SECTOR / interface_mb_per_s_to_bytes_per_s(_BUS_MB_PER_S)
    )
    service = 0.2 + seek + period / 2.0 + transfer + bus

    span = float(arrival[-1])
    if span <= 0:
        raise EngineRefused("degenerate trace span")

    wait = np.zeros(n, dtype=np.float64)
    rho_max = 0.0
    for d in range(disk_count):
        mask = disk == d
        k = int(mask.sum())
        if k == 0:
            continue
        s_d = service[mask]
        es = float(np.mean(s_d))
        rho = (k / span) * es
        rho_max = max(rho_max, rho)
        if rho >= ANALYTIC_MAX_RHO_RUNTIME:
            raise EngineRefused(
                f"analytic engine refused for {task.label()}: per-disk "
                f"utilization {rho:.2f} >= {ANALYTIC_MAX_RHO_RUNTIME:.2f}"
            )
        # Arrival burstiness is measured per disk: splitting the (bursty)
        # global stream across the array thins it, and the thinned
        # streams are much smoother than the whole — using the global
        # SCV here overestimates queueing on bursty multi-disk workloads
        # by 2x and more.
        if k >= 2:
            gaps_d = np.diff(arrival[mask])
            mean_gap = float(np.mean(gaps_d))
            ca2 = (
                float(np.var(gaps_d)) / (mean_gap * mean_gap)
                if mean_gap > 0
                else 1.0
            )
        else:
            ca2 = 1.0
        cs2 = float(np.var(s_d)) / (es * es) if es > 0 else 0.0
        wq = ((ca2 + cs2) / 2.0) * (rho / (1.0 - rho)) * es
        wait[mask] = max(wq, 0.0)

    response = service + wait
    med, p95 = percentiles_batch(response, (50, 95))
    return WorkloadSweepResult(
        workload=task.workload,
        rpm=task.rpm,
        requests=n,
        seed=task.seed,
        mean_ms=float(np.mean(response)),
        median_ms=float(med),
        p95_ms=float(p95),
        max_ms=float(np.max(response)),
        simulated_ms=float(np.max(arrival + response)),
        max_utilization=min(rho_max, 1.0),
        cache_hit_ratio=0.0,
        cdf=tuple(cdf_batch(response)),
        samples_ms=(),
        telemetry=None,
        fault_summary=None,
        engine="analytic",
    )


# A symbol the numpy-less CI check imports to prove the module itself
# (not just the exact path) stays importable without numpy.
__all__ = [
    "ANALYTIC_MEAN_RTOL",
    "ANALYTIC_P95_RTOL",
    "ANALYTIC_UTILIZATION_ATOL",
    "ANALYTIC_HIT_RATIO_ATOL",
    "ENGINES",
    "EngineRefused",
    "analytic_refusal",
    "decide_engine",
    "have_numpy",
    "planned_engines",
    "run_fast_task",
    "run_workload_task_analytic",
    "run_workload_task_vectorized",
    "validate_engine",
    "vectorized_refusal",
]
