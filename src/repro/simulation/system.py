"""The complete simulated storage system: array + disks + event engine.

Replays a workload trace open-loop (requests arrive at their trace times
regardless of completions, as DiskSim does for trace-driven runs) and
collects response-time statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.faults import FaultConfig
    from repro.telemetry import Telemetry
from repro.simulation.array import StorageArray
from repro.simulation.disk import SimulatedDisk, standard_disk
from repro.simulation.events import EventQueue
from repro.simulation.raid import ArrayGeometry, Raid0Geometry, Raid5Geometry
from repro.simulation.request import Request
from repro.simulation.statistics import ResponseTimeStats
from repro.units import GB_MARKETING, MIB
from repro.workloads.trace import Trace


@dataclass
class SimulationReport:
    """Outcome of replaying one trace.

    Attributes:
        trace_name: workload label.
        rpm: member-disk spindle speed used.
        stats: logical response-time statistics.
        requests: number of logical requests completed.
        simulated_ms: simulated time at the last completion.
        disk_utilizations: per-disk busy fractions.
        cache_hit_ratio: pooled read hit ratio across disks.
        fault_summary: pooled injected-fault counters across disks (see
            :meth:`repro.faults.FaultStats.as_dict`); None when the run
            had no fault injection configured.
    """

    trace_name: str
    rpm: float
    stats: ResponseTimeStats
    requests: int
    simulated_ms: float
    disk_utilizations: List[float]
    cache_hit_ratio: float
    fault_summary: Optional[Dict[str, Any]] = None

    def mean_response_ms(self) -> float:
        return self.stats.mean_ms()


class StorageSystem:
    """One array-backed storage system ready to replay traces.

    Args:
        disks: member disks.
        geometry: striping geometry binding them together.
        events: event queue shared by all components.
    """

    def __init__(
        self,
        disks: Sequence[SimulatedDisk],
        geometry: ArrayGeometry,
        events: EventQueue,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        from repro.telemetry import maybe

        self.events = events
        self.stats = ResponseTimeStats()
        self._tel = maybe(telemetry)
        self.array = StorageArray(
            disks=disks,
            geometry=geometry,
            events=events,
            on_complete=self._logical_done,
        )
        if self._tel is not None:
            self._register_probes()

    def _register_probes(self) -> None:
        """System-level time series: queue depths, utilization, cache, RPM."""
        assert self._tel is not None
        probes = self._tel.probes
        events = self.events
        probes.add("events.queued", lambda: float(len(events)))
        probes.add("inflight", lambda: float(self.array.in_flight()))
        probes.add("rpm", lambda: self.disks[0].rpm, unit="rpm")
        for disk in self.array.disks:
            probes.add(
                f"{disk.name}.queue_depth",
                (lambda d=disk: float(d.queue_depth())),
            )
            probes.add(
                f"{disk.name}.utilization",
                (
                    lambda d=disk: d.stats.utilization(events.now_ms)
                    if events.now_ms > 0
                    else 0.0
                ),
            )
            if disk.cache is not None:
                probes.add(
                    f"{disk.name}.cache_hit_ratio",
                    (lambda d=disk: d.cache.stats.hit_ratio),
                )

    def _logical_done(self, request: Request, now: float) -> None:
        self.stats.add(request.response_time_ms)
        if self._tel is not None:
            self._tel.record(
                now,
                "logical_complete",
                "system",
                lba=request.lba,
                sectors=request.sectors,
                write=request.is_write,
                response_ms=request.response_time_ms,
            )
            self._tel.observe("response_ms", request.response_time_ms)
            self._tel.count("logical_requests")

    @property
    def disks(self) -> List[SimulatedDisk]:
        return self.array.disks

    def _submit_traced(self, request: Request) -> None:
        assert self._tel is not None
        self._tel.record(
            self.events.now_ms,
            "request_issue",
            "system",
            lba=request.lba,
            sectors=request.sectors,
            write=request.is_write,
        )
        self.array.submit(request)

    def run_trace(self, trace: Trace, max_events: Optional[int] = None) -> SimulationReport:
        """Replay a trace to completion and report statistics."""
        if len(trace) == 0:
            raise SimulationError(f"trace {trace.name!r} is empty")
        capacity = self.array.logical_sectors
        if trace.max_lba() > capacity:
            raise SimulationError(
                f"trace {trace.name!r} addresses {trace.max_lba()} sectors but the "
                f"array holds {capacity}"
            )
        arrivals = []
        submit = (
            self._submit_traced if self._tel is not None else self.array.submit
        )
        for record in trace:
            request = Request(
                arrival_ms=record.time_ms,
                lba=record.lba,
                sectors=record.sectors,
                is_write=record.is_write,
            )
            arrivals.append((record.time_ms, lambda t, r=request: submit(r)))
        self.events.schedule_batch(arrivals)
        if self._tel is not None:
            self._tel.probes.attach(self.events)
        self.events.run(max_events=max_events)
        if self.array.in_flight():
            raise SimulationError(
                f"{self.array.in_flight()} logical requests never completed"
            )
        elapsed = self.events.now_ms
        utilizations = [d.stats.utilization(elapsed) for d in self.disks]
        hits = sum(d.cache.stats.read_hits for d in self.disks if d.cache)
        lookups = sum(d.cache.stats.lookups for d in self.disks if d.cache)
        return SimulationReport(
            trace_name=trace.name,
            rpm=self.disks[0].rpm,
            stats=self.stats,
            requests=self.stats.count,
            simulated_ms=elapsed,
            disk_utilizations=utilizations,
            cache_hit_ratio=hits / lookups if lookups else 0.0,
            fault_summary=self.fault_summary(),
        )

    def fault_summary(self) -> Optional[Dict[str, Any]]:
        """Pooled injected-fault counters across member disks.

        Returns None when no disk carries a fault injector, so reports of
        fault-free runs stay unchanged.
        """
        from repro.faults import FaultStats

        injectors = [d.fault_injector for d in self.disks if d.fault_injector]
        if not injectors:
            return None
        pooled = FaultStats()
        for injector in injectors:
            pooled.merge(injector.stats)
        return pooled.as_dict()


def build_system(
    disk_count: int,
    rpm: float,
    disk_capacity_gb: float,
    raid5: bool = False,
    stripe_unit_sectors: int = 16,
    diameter_in: float = 3.3,
    platters: int = 2,
    kbpi: float = 480.0,
    ktpi: float = 30.0,
    zone_count: int = 30,
    cache_bytes: int = 4 * MIB,
    scheduler_name: str = "fcfs",
    telemetry: Optional["Telemetry"] = None,
    fault_config: Optional["FaultConfig"] = None,
) -> StorageSystem:
    """Build a storage system from workload-table parameters (Fig. 4a).

    The member disks come from the library's drive models (layout, seek
    curve); ``disk_capacity_gb`` clips the usable portion of each disk so a
    trace's address space matches the paper's systems even when the modeled
    media holds more.  When ``fault_config`` injects disk faults, each
    member disk gets its own injector keyed by the disk's name, so the
    fault sequence is independent of disk count and replay order.
    """
    if disk_count < 1:
        raise SimulationError(f"disk count must be >= 1, got {disk_count}")
    if disk_capacity_gb <= 0:
        raise SimulationError("disk capacity must be positive")
    events = EventQueue()
    disks: List[SimulatedDisk] = []
    from repro.simulation.scheduler import make_scheduler

    inject = fault_config is not None and fault_config.injects_disk_faults
    for index in range(disk_count):
        name = f"disk{index}"
        injector = (
            fault_config.injector_for(name)
            if inject and fault_config is not None
            else None
        )
        disk = standard_disk(
            name=name,
            events=events,
            diameter_in=diameter_in,
            platters=platters,
            kbpi=kbpi,
            ktpi=ktpi,
            rpm=rpm,
            zone_count=zone_count,
            cache_bytes=cache_bytes,
            telemetry=telemetry,
            fault_injector=injector,
        )
        disk.scheduler = make_scheduler(
            scheduler_name,
            disk.layout.cylinder_of,
            telemetry=telemetry,
            subject=disk.name,
        )
        disks.append(disk)
    requested_sectors = int(disk_capacity_gb * GB_MARKETING) // 512
    per_disk = min(requested_sectors, disks[0].total_sectors)
    if per_disk < stripe_unit_sectors:
        raise SimulationError("per-disk capacity below one stripe unit")
    geometry: ArrayGeometry
    if raid5:
        geometry = Raid5Geometry(disk_count, stripe_unit_sectors, per_disk)
    else:
        geometry = Raid0Geometry(disk_count, stripe_unit_sectors, per_disk)
    return StorageSystem(
        disks=disks, geometry=geometry, events=events, telemetry=telemetry
    )
