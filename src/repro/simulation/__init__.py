"""Event-driven storage simulator (the DiskSim substitute)."""

from repro.simulation.array import StorageArray
from repro.simulation.cache import CacheStats, DiskCache
from repro.simulation.disk import CACHE_HIT_MS, DiskStats, SimulatedDisk, standard_disk
from repro.simulation.events import EventQueue
from repro.simulation.layout import DiskLayout, SectorAddress
from repro.simulation.mechanics import DiskMechanics, ServiceBreakdown
from repro.simulation.power import PowerReport, energy_per_request_j, power_report
from repro.simulation.raid import (
    AccessPlan,
    ArrayGeometry,
    ChildAccess,
    Raid0Geometry,
    Raid1Geometry,
    Raid5Geometry,
)
from repro.simulation.request import Request
from repro.simulation.scheduler import (
    FCFSScheduler,
    LookScheduler,
    Scheduler,
    SSTFScheduler,
    make_scheduler,
)
from repro.simulation.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SharedStoreBackend,
    resolve_backend,
    resolve_backend_name,
)
from repro.simulation.resilience import (
    MANIFEST_SCHEMA,
    SweepRunReport,
    TaskEnvelope,
    run_sweep_cached,
    run_sweep_resilient,
)
from repro.simulation.statistics import PAPER_CDF_BINS_MS, ResponseTimeStats
from repro.simulation.sweep import (
    RoadmapTask,
    WorkloadSweepResult,
    WorkloadTask,
    build_workload_tasks,
    resolve_workers,
    run_sweep,
    sweep_roadmap,
    sweep_workloads,
    sweep_workloads_resilient,
)
from repro.simulation.system import SimulationReport, StorageSystem, build_system

__all__ = [
    "EventQueue",
    "Request",
    "DiskLayout",
    "SectorAddress",
    "DiskMechanics",
    "ServiceBreakdown",
    "DiskCache",
    "CacheStats",
    "SimulatedDisk",
    "DiskStats",
    "standard_disk",
    "CACHE_HIT_MS",
    "Scheduler",
    "FCFSScheduler",
    "SSTFScheduler",
    "LookScheduler",
    "make_scheduler",
    "ArrayGeometry",
    "Raid0Geometry",
    "Raid1Geometry",
    "PowerReport",
    "power_report",
    "energy_per_request_j",
    "Raid5Geometry",
    "AccessPlan",
    "ChildAccess",
    "StorageArray",
    "ResponseTimeStats",
    "PAPER_CDF_BINS_MS",
    "StorageSystem",
    "SimulationReport",
    "build_system",
    "RoadmapTask",
    "WorkloadTask",
    "WorkloadSweepResult",
    "build_workload_tasks",
    "resolve_workers",
    "run_sweep",
    "sweep_roadmap",
    "sweep_workloads",
    "sweep_workloads_resilient",
    "MANIFEST_SCHEMA",
    "SweepRunReport",
    "TaskEnvelope",
    "run_sweep_cached",
    "run_sweep_resilient",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SharedStoreBackend",
    "resolve_backend",
    "resolve_backend_name",
]
