"""Energy accounting for simulated disks.

Links the simulator's activity counters to the thermal model's power
terms: windage and spindle-motor losses accrue with wall-clock spin time,
VCM power accrues only while the actuator is seeking.  Used by the DTM
studies to report energy alongside temperature and performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simulation.disk import SimulatedDisk
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - keep the thermal stack (and its
    # numpy dependency) out of the simulation package's import graph
    from repro.thermal.model import ThermalCalibration


@dataclass(frozen=True)
class PowerReport:
    """Energy breakdown for one disk over an interval.

    Attributes:
        elapsed_s: accounted wall-clock interval.
        spindle_j: spindle-motor electrical/bearing losses.
        windage_j: viscous dissipation of the spinning stack.
        vcm_j: voice-coil energy (seek-time weighted).
        seek_duty: fraction of the interval spent seeking.
    """

    elapsed_s: float
    spindle_j: float
    windage_j: float
    vcm_j: float
    seek_duty: float

    @property
    def total_j(self) -> float:
        return self.spindle_j + self.windage_j + self.vcm_j

    @property
    def average_w(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_j / self.elapsed_s


def power_report(
    disk: SimulatedDisk,
    elapsed_ms: float,
    diameter_in: float,
    platter_count: int = 1,
    calibration: Optional["ThermalCalibration"] = None,
) -> PowerReport:
    """Energy breakdown of a disk after a simulation run.

    Args:
        disk: the simulated disk (its stats supply seek time).
        elapsed_ms: simulated interval covered.
        diameter_in: the drive's platter diameter.
        platter_count: platters in the stack.
        calibration: supplies the spindle-motor loss; defaults to the
            Cheetah 15K.3 calibration (resolved lazily so that merely
            importing the simulator does not pull in the thermal stack).

    Raises:
        SimulationError: if the interval is non-positive.
    """
    from repro.thermal.vcm import vcm_power_w
    from repro.thermal.viscous import viscous_power_w

    if calibration is None:
        from repro.thermal.model import DEFAULT_CALIBRATION

        calibration = DEFAULT_CALIBRATION
    if elapsed_ms <= 0:
        raise SimulationError(f"elapsed interval must be positive, got {elapsed_ms}")
    elapsed_s = elapsed_ms / 1000.0
    seek_s = min(disk.stats.seek_ms / 1000.0, elapsed_s)
    windage = viscous_power_w(disk.rpm, diameter_in, platter_count)
    return PowerReport(
        elapsed_s=elapsed_s,
        spindle_j=calibration.spm_power_w * elapsed_s,
        windage_j=windage * elapsed_s,
        vcm_j=vcm_power_w(diameter_in) * seek_s,
        seek_duty=seek_s / elapsed_s,
    )


def energy_per_request_j(report: PowerReport, requests: int) -> float:
    """Average energy per completed request, joules."""
    if requests <= 0:
        raise SimulationError(f"requests must be positive, got {requests}")
    return report.total_j / requests
