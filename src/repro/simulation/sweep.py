"""Parallel sweep runner for roadmap and workload experiments.

The paper's headline experiments are embarrassingly parallel sweeps:
Figure 2 evaluates the thermally constrained roadmap for three platter
counts over eleven years, and Figure 4 replays five trace-driven workloads
at four spindle speeds each.  This module fans those configurations out
over a :class:`concurrent.futures.ProcessPoolExecutor` while guaranteeing
that the results are *byte-identical* to the serial path:

* **Pure tasks.** Each sweep point is described by a small frozen
  dataclass holding every input (including the RNG seed for synthetic
  traces); the worker rebuilds its world from that description alone, so
  no mutable state crosses process boundaries.
* **Deterministic seeding.** Trace generation derives from the explicit
  ``seed`` carried by the task — never from global RNG state — so a point
  computes the same trace in any process, in any order.
* **Deterministic ordering.** Tasks are dispatched with
  ``executor.map``, which yields results in task order regardless of
  completion order; the serial path iterates the identical task list with
  the identical worker function.

Adding a sweep axis is mechanical: add a field to the task dataclass (or a
new task type), include it in the task list built by the ``sweep_*``
front-end, and consume it in the module-level worker function (workers
must stay module-level so they pickle under any start method).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.constants import (
    ROADMAP_FIRST_YEAR,
    ROADMAP_LAST_YEAR,
    ROADMAP_PLATTER_COUNTS,
    ROADMAP_PLATTER_SIZES_IN,
)
from repro.errors import SimulationError
from repro.faults import FaultConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.scaling.roadmap import RoadmapPoint
    from repro.simulation.backends import ExecutionBackend
    from repro.simulation.resilience import SweepRunReport
    from repro.store import ResultStore
    from repro.telemetry import Telemetry

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Backend spec accepted by every sweep front-end: a backend name
#: (``serial`` / ``process`` / ``shared-store``), a constructed
#: :class:`repro.simulation.backends.ExecutionBackend`, or None (resolve
#: from ``REPRO_SWEEP_BACKEND``, default ``process``).
BackendSpec = Optional[Union[str, "ExecutionBackend"]]

#: Default span of the Figure 2 roadmap sweep.
ROADMAP_YEARS: Tuple[int, ...] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1))


def resolve_workers(workers: Optional[int], task_count: int) -> int:
    """Actual worker-process count for a sweep.

    ``None`` asks for one worker per available core, capped at the task
    count; ``0`` and ``1`` (and single-core hosts) select the in-process
    serial path, which produces identical results.  Negative counts are
    an error.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise SimulationError(f"worker count cannot be negative, got {workers}")
    return max(1, min(workers, task_count))


def run_sweep(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    workers: Optional[int] = None,
    backend: BackendSpec = None,
) -> List[ResultT]:
    """Run ``worker`` over every task, on whichever execution backend.

    Results are returned in task order on every backend; with a pure
    worker function the backends are indistinguishable output-wise (the
    differential suite asserts byte-identity).

    This is the *strict* front-end: the first task failure raises a
    :class:`repro.errors.SweepExecutionError` carrying the worker-side
    traceback.  For per-task outcomes, retries, timeouts and partial
    results, use :func:`repro.simulation.resilience.run_sweep_resilient`.
    """
    from repro.simulation.resilience import run_sweep_resilient

    report = run_sweep_resilient(
        tasks, worker, workers=workers, retries=0, backend=backend
    )
    report.raise_on_failure()
    return report.ok_results()


# ---------------------------------------------------------------------------
# Figure 2: roadmap sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RoadmapTask:
    """One roadmap evaluation: a platter count over a span of years.

    A task covers *all* years for one platter count (rather than one
    (year, count) cell) so the per-diameter envelope search inside
    :func:`repro.scaling.thermal_roadmap` is computed once per task, as the
    serial implementation does.
    """

    platter_count: int
    years: Tuple[int, ...] = ROADMAP_YEARS
    sizes: Tuple[float, ...] = ROADMAP_PLATTER_SIZES_IN


def _run_roadmap_task(task: RoadmapTask) -> List["RoadmapPoint"]:
    from repro.scaling.roadmap import thermal_roadmap

    return thermal_roadmap(
        platter_count=task.platter_count, years=task.years, sizes=task.sizes
    )


def sweep_roadmap(
    platter_counts: Sequence[int] = ROADMAP_PLATTER_COUNTS,
    years: Sequence[int] = ROADMAP_YEARS,
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    workers: Optional[int] = None,
    backend: BackendSpec = None,
) -> Dict[int, List["RoadmapPoint"]]:
    """Fan the Figure 2 roadmap out over platter counts.

    Roadmap tasks have no content-key codec, so the ``shared-store``
    backend cannot run them; ``serial`` and ``process`` both apply.

    Returns:
        {platter_count: [RoadmapPoint, ...]} with points ordered exactly as
        :func:`repro.scaling.thermal_roadmap` orders them (year-major).
    """
    tasks = [
        RoadmapTask(platter_count=count, years=tuple(years), sizes=tuple(sizes))
        for count in platter_counts
    ]
    results = run_sweep(tasks, _run_roadmap_task, workers=workers, backend=backend)
    return {task.platter_count: points for task, points in zip(tasks, results)}


# ---------------------------------------------------------------------------
# Figure 4: workload RPM sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadTask:
    """One trace replay: a catalog workload at one spindle speed.

    ``telemetry=True`` instruments the replay (metrics, event trace,
    time-series probes at ``probe_interval_ms``) and ships the full
    telemetry snapshot back as a plain dict — picklable, so the parallel
    path carries it across process boundaries unchanged.
    ``trace_capacity`` bounds the shipped event trace.
    ``fault_config`` (a frozen :class:`repro.faults.FaultConfig`) injects
    deterministic drive faults into the replay; the result then carries a
    ``fault_summary``.
    ``engine`` selects the simulation engine (see
    :mod:`repro.simulation.fastpath`): ``exact`` (the event-driven
    simulator), ``vectorized``, ``analytic``, or ``auto``.
    """

    workload: str
    rpm: float
    requests: int = 6000
    seed: int = 1
    keep_samples: bool = False
    telemetry: bool = False
    probe_interval_ms: float = 100.0
    trace_capacity: int = 4096
    fault_config: Optional[FaultConfig] = None
    engine: str = "exact"

    def label(self) -> str:
        """Human-readable task identity for manifests and logs."""
        base = f"{self.workload}@{self.rpm:.0f}rpm(seed={self.seed})"
        if self.engine != "exact":
            base += f"[{self.engine}]"
        return base


@dataclass(frozen=True)
class WorkloadSweepResult:
    """Summary of one replay, cheap to pickle back from a worker.

    ``samples_ms`` is populated only when the task asked for it
    (``keep_samples=True``) — the full sample vector is what makes the
    parallel path byte-identical checkable, but it is megabytes at paper
    scale, so summaries travel by default.
    """

    workload: str
    rpm: float
    requests: int
    seed: int
    mean_ms: float
    median_ms: float
    p95_ms: float
    max_ms: float
    simulated_ms: float
    max_utilization: float
    cache_hit_ratio: float
    cdf: Tuple[Tuple[float, float], ...]
    samples_ms: Tuple[float, ...] = field(default=(), repr=False)
    #: full telemetry snapshot (schema ``repro.telemetry/1``) when the
    #: task asked for instrumentation; None otherwise.
    telemetry: Optional[dict] = field(default=None, repr=False)
    #: aggregated fault-injection counters (see
    #: :meth:`repro.faults.FaultStats.as_dict`) when the task injected
    #: faults; None otherwise.
    fault_summary: Optional[dict] = field(default=None, repr=False)
    #: the engine that actually produced this result — ``exact`` when a
    #: fast engine fell back (so fallbacks are visible in the output).
    engine: str = "exact"


def _run_workload_task(task: WorkloadTask) -> WorkloadSweepResult:
    from repro.workloads import workload as lookup

    if task.engine != "exact":
        from repro.simulation.fastpath import run_fast_task

        fast = run_fast_task(task)
        if fast is not None:
            return fast

    spec = lookup(task.workload)
    trace = spec.generate(num_requests=task.requests, seed=task.seed)
    tel = None
    if task.telemetry:
        from repro.telemetry import Telemetry

        tel = Telemetry(
            trace_capacity=task.trace_capacity,
            probe_interval_ms=task.probe_interval_ms,
        )
    system = spec.build_system(
        task.rpm, telemetry=tel, fault_config=task.fault_config
    )
    report = system.run_trace(trace)
    return WorkloadSweepResult(
        workload=task.workload,
        rpm=task.rpm,
        requests=report.requests,
        seed=task.seed,
        mean_ms=report.stats.mean_ms(),
        median_ms=report.stats.median_ms(),
        p95_ms=report.stats.percentile_ms(95),
        max_ms=report.stats.max_ms(),
        simulated_ms=report.simulated_ms,
        max_utilization=max(report.disk_utilizations),
        cache_hit_ratio=report.cache_hit_ratio,
        cdf=tuple(report.stats.cdf()),
        samples_ms=tuple(report.stats.samples_ms) if task.keep_samples else (),
        telemetry=tel.as_dict() if tel is not None else None,
        fault_summary=report.fault_summary,
        engine="exact",
    )


# ---------------------------------------------------------------------------
# Result-store integration: task keys and the result codec
#
# These live next to the dataclasses they serialize so a field added to
# WorkloadTask/WorkloadSweepResult is immediately visible here — forgetting
# to fold it into the key or the codec is a correctness bug (stale hits),
# which is why the key covers *every* material field and the code-schema
# salt exists for everything else.
# ---------------------------------------------------------------------------

#: Task-family tag salted into every workload-sweep key.  Bump the suffix
#: when WorkloadSweepResult changes shape (the payload codec version).
#: /2: results gained the ``engine`` field and keys fold the requested
#: engine in — an analytic summary must never satisfy an exact request.
WORKLOAD_TASK_KIND = "workload_sweep/2"

#: Schema of the results document written by ``--results-out`` and used
#: for byte-identity checks in the differential suite.
RESULTS_SCHEMA = "repro.sweep_results/2"


def workload_task_key(task: WorkloadTask) -> str:
    """The canonical content key of one workload sweep point.

    Immaterial knobs are normalized out: ``probe_interval_ms`` and
    ``trace_capacity`` shape only the telemetry snapshot, so with
    ``telemetry=False`` they are folded to None — asking for the same
    replay with a different (unused) probe interval is the same task.
    """
    import dataclasses

    from repro.store import config_key

    fault = (
        dataclasses.asdict(task.fault_config)
        if task.fault_config is not None
        else None
    )
    config = {
        "workload": task.workload,
        "rpm": task.rpm,
        "requests": task.requests,
        "seed": task.seed,
        "keep_samples": task.keep_samples,
        "telemetry": task.telemetry,
        "probe_interval_ms": task.probe_interval_ms if task.telemetry else None,
        "trace_capacity": task.trace_capacity if task.telemetry else None,
        "fault_config": fault,
        "engine": task.engine,
    }
    return config_key(WORKLOAD_TASK_KIND, config)


def workload_result_to_payload(result: WorkloadSweepResult) -> Dict[str, object]:
    """Serialize one result into an exact, strict-JSON-safe payload."""
    from repro.store import encode_payload

    return {
        "workload": result.workload,
        "rpm": result.rpm,
        "requests": result.requests,
        "seed": result.seed,
        "mean_ms": result.mean_ms,
        "median_ms": result.median_ms,
        "p95_ms": result.p95_ms,
        "max_ms": result.max_ms,
        "simulated_ms": result.simulated_ms,
        "max_utilization": result.max_utilization,
        "cache_hit_ratio": result.cache_hit_ratio,
        "cdf": [[x, y] for x, y in result.cdf],
        "samples_ms": list(result.samples_ms),
        "telemetry": (
            encode_payload(result.telemetry)
            if result.telemetry is not None
            else None
        ),
        "fault_summary": (
            encode_payload(result.fault_summary)
            if result.fault_summary is not None
            else None
        ),
        "engine": result.engine,
    }


def workload_result_from_payload(payload: Dict[str, object]) -> WorkloadSweepResult:
    """Reconstruct a result indistinguishable from a freshly computed one.

    JSON flattens tuples to lists; the tuple-typed fields are rebuilt
    here so cached results compare (and serialize) identically to
    computed ones — the property the differential suite pins down.
    Numeric values pass through *uncoerced*: JSON preserves int-vs-float
    exactly, and coercing (a CDF bucket edge of ``5`` into ``5.0``) would
    break byte-identity between cached and computed output.
    """
    from repro.store import decode_payload

    telemetry = payload["telemetry"]
    fault_summary = payload["fault_summary"]
    return WorkloadSweepResult(
        workload=payload["workload"],  # type: ignore[arg-type]
        rpm=payload["rpm"],  # type: ignore[arg-type]
        requests=payload["requests"],  # type: ignore[arg-type]
        seed=payload["seed"],  # type: ignore[arg-type]
        mean_ms=payload["mean_ms"],  # type: ignore[arg-type]
        median_ms=payload["median_ms"],  # type: ignore[arg-type]
        p95_ms=payload["p95_ms"],  # type: ignore[arg-type]
        max_ms=payload["max_ms"],  # type: ignore[arg-type]
        simulated_ms=payload["simulated_ms"],  # type: ignore[arg-type]
        max_utilization=payload["max_utilization"],  # type: ignore[arg-type]
        cache_hit_ratio=payload["cache_hit_ratio"],  # type: ignore[arg-type]
        cdf=tuple(
            (x, y) for x, y in payload["cdf"]  # type: ignore[union-attr]
        ),
        samples_ms=tuple(payload["samples_ms"]),  # type: ignore[arg-type]
        telemetry=decode_payload(telemetry) if telemetry is not None else None,
        fault_summary=(
            decode_payload(fault_summary) if fault_summary is not None else None
        ),
        engine=payload["engine"],  # type: ignore[arg-type]
    )


def results_document(
    results: Sequence[Optional[WorkloadSweepResult]],
) -> Dict[str, object]:
    """The :data:`RESULTS_SCHEMA` document for a (possibly holey) sweep."""
    return {
        "schema": RESULTS_SCHEMA,
        "results": [
            workload_result_to_payload(r) if r is not None else None
            for r in results
        ],
    }


def results_json_bytes(
    results: Sequence[Optional[WorkloadSweepResult]],
) -> bytes:
    """Canonical serialized results — the byte-identity currency.

    Two runs of the same sweep (serial, parallel, cached, resumed) agree
    exactly when these bytes agree; the differential matrix and the CI
    store-smoke job compare nothing else.
    """
    from repro.store import stable_json

    return (stable_json(results_document(results)) + "\n").encode("utf-8")


def build_workload_tasks(
    names: Sequence[str],
    rpms: Optional[Sequence[float]] = None,
    rpm_steps: int = 4,
    requests: int = 6000,
    seed: int = 1,
    keep_samples: bool = False,
    telemetry: bool = False,
    probe_interval_ms: float = 100.0,
    trace_capacity: int = 4096,
    fault_config: Optional[FaultConfig] = None,
    engine: str = "exact",
) -> List[WorkloadTask]:
    """The (workload, RPM) task grid, workload-major then ladder order.

    Workload names (and the engine name) are validated here, before any
    fork, so an unknown name fails fast in the parent process.
    """
    from repro.simulation.fastpath import validate_engine
    from repro.workloads import workload as lookup

    validate_engine(engine)
    tasks: List[WorkloadTask] = []
    for name in names:
        spec = lookup(name)  # validates the name before any fork
        ladder = tuple(rpms) if rpms is not None else spec.rpm_sweep(rpm_steps)
        for rpm in ladder:
            tasks.append(
                WorkloadTask(
                    workload=name,
                    rpm=rpm,
                    requests=requests,
                    seed=seed,
                    keep_samples=keep_samples,
                    telemetry=telemetry,
                    probe_interval_ms=probe_interval_ms,
                    trace_capacity=trace_capacity,
                    fault_config=fault_config,
                    engine=engine,
                )
            )
    return tasks


def plan_sweep_workers(
    tasks: Sequence[WorkloadTask], workers: Optional[int]
) -> Optional[int]:
    """Worker count after accounting for engine plans.

    A sweep whose every task will run on the analytic engine finishes in
    milliseconds of closed-form math — forking a process pool would cost
    more than the whole sweep, so such sweeps are forced serial
    (``workers=0``, the in-process path, which spawns nothing).  Any task
    planning a simulation engine (exact or vectorized) leaves ``workers``
    untouched.  Engine refusals are not raised here; the per-task worker
    raises them so resilient sweeps get per-task outcomes.
    """
    from repro.simulation.fastpath import all_analytic

    if all_analytic(tasks):
        return 0
    return workers


def effective_store(
    store: Optional["ResultStore"], backend: BackendSpec
) -> Optional["ResultStore"]:
    """The store a sweep will actually use, given its backend.

    The ``shared-store`` backend coordinates *through* a result store, so
    selecting it without one (say, ``REPRO_SWEEP_BACKEND=shared-store``
    flipping a whole test run) would be a contradiction; instead the
    default store (``REPRO_STORE_DIR``, else ``~/.cache/repro``) is
    materialized.  Every other backend passes the caller's choice
    through untouched.
    """
    if store is not None:
        return store
    from repro.simulation.backends import ExecutionBackend, resolve_backend_name

    name = (
        backend.name
        if isinstance(backend, ExecutionBackend)
        else resolve_backend_name(backend)
    )
    if name != "shared-store":
        return None
    from repro.store import ResultStore

    return ResultStore()


#: Backward-compatible alias (the helper went public for the fleet
#: sweep front-ends; the behaviour is unchanged).
_effective_store = effective_store


def sweep_workloads(
    names: Sequence[str],
    rpms: Optional[Sequence[float]] = None,
    rpm_steps: int = 4,
    requests: int = 6000,
    seed: int = 1,
    workers: Optional[int] = None,
    keep_samples: bool = False,
    telemetry: bool = False,
    probe_interval_ms: float = 100.0,
    trace_capacity: int = 4096,
    fault_config: Optional[FaultConfig] = None,
    engine: str = "exact",
    store: Optional["ResultStore"] = None,
    backend: BackendSpec = None,
) -> List[WorkloadSweepResult]:
    """Fan Figure 4 replays out over (workload, RPM) points.

    Args:
        names: catalog workload names.
        rpms: explicit RPM ladder; by default each workload's own
            ``rpm_sweep(rpm_steps)`` ladder (base, +5K, ...).
        requests / seed: synthetic-trace shape, forwarded to every task.
        workers: process count (None = all cores; 0/1 = serial in-process).
        keep_samples: carry the full response-time sample vector back.
        telemetry: instrument every replay; each result then carries a
            full telemetry snapshot dict (time series, trace, metrics).
        probe_interval_ms / trace_capacity: telemetry shape, forwarded to
            every task.
        fault_config: inject deterministic drive faults into every replay
            (same plan, per-disk seeds derived inside each task).
        engine: simulation engine for every task (see
            :mod:`repro.simulation.fastpath`); pure-analytic sweeps run
            serially without spawning a process pool.
        store: optional :class:`repro.store.ResultStore`; completed points
            are served from / persisted to it (bit-identical either way).
        backend: execution backend name/instance/None (see
            :data:`BackendSpec`); ``shared-store`` without an explicit
            store materializes the default one.

    Returns:
        One result per (workload, RPM) point, ordered workload-major in the
        order given, then by ascending ladder position.
    """
    tasks = build_workload_tasks(
        names,
        rpms=rpms,
        rpm_steps=rpm_steps,
        requests=requests,
        seed=seed,
        keep_samples=keep_samples,
        telemetry=telemetry,
        probe_interval_ms=probe_interval_ms,
        trace_capacity=trace_capacity,
        fault_config=fault_config,
        engine=engine,
    )
    workers = plan_sweep_workers(tasks, workers)
    store = effective_store(store, backend)
    if store is None:
        return run_sweep(tasks, _run_workload_task, workers=workers, backend=backend)
    from repro.simulation.resilience import run_sweep_cached

    report = run_sweep_cached(
        tasks,
        _run_workload_task,
        store,
        workload_task_key,
        workload_result_to_payload,
        workload_result_from_payload,
        kind=WORKLOAD_TASK_KIND,
        workers=workers,
        retries=0,
        backend=backend,
    )
    report.raise_on_failure()
    return report.ok_results()


def sweep_workloads_resilient(
    names: Sequence[str],
    rpms: Optional[Sequence[float]] = None,
    rpm_steps: int = 4,
    requests: int = 6000,
    seed: int = 1,
    workers: Optional[int] = None,
    keep_samples: bool = False,
    telemetry: bool = False,
    probe_interval_ms: float = 100.0,
    trace_capacity: int = 4096,
    fault_config: Optional[FaultConfig] = None,
    engine: str = "exact",
    retries: int = 2,
    backoff_s: float = 0.0,
    timeout_s: Optional[float] = None,
    run_telemetry: Optional["Telemetry"] = None,
    store: Optional["ResultStore"] = None,
    backend: BackendSpec = None,
) -> Tuple[List[Optional[WorkloadSweepResult]], "SweepRunReport"]:
    """The Figure 4 sweep with partial-results semantics.

    Unlike :func:`sweep_workloads`, a failing point does not abort the
    run: every healthy point is returned (``None`` holes keep task
    alignment) together with the :class:`SweepRunReport` whose
    ``manifest()`` names each failed task.

    Args:
        retries / backoff_s / timeout_s: resilience knobs, see
            :func:`repro.simulation.resilience.run_sweep_resilient`.
        run_telemetry: optional *parent-side* telemetry; receives the
            ``sweep.*`` retry/timeout/pool-break counters (distinct from
            ``telemetry=``, which instruments each replay inside its
            worker).
        store: optional :class:`repro.store.ResultStore`; hits skip the
            executor entirely, misses are persisted as they complete, and
            the report (and its manifest) gains store accounting —
            re-running a partially failed sweep with the same store only
            recomputes the failed points.
        backend: execution backend name/instance/None (see
            :data:`BackendSpec`); the resolved name lands on
            ``report.backend`` and in the manifest.
    """
    from repro.simulation.resilience import run_sweep_cached, run_sweep_resilient

    tasks = build_workload_tasks(
        names,
        rpms=rpms,
        rpm_steps=rpm_steps,
        requests=requests,
        seed=seed,
        keep_samples=keep_samples,
        telemetry=telemetry,
        probe_interval_ms=probe_interval_ms,
        trace_capacity=trace_capacity,
        fault_config=fault_config,
        engine=engine,
    )
    workers = plan_sweep_workers(tasks, workers)
    store = effective_store(store, backend)
    if store is not None:
        report = run_sweep_cached(
            tasks,
            _run_workload_task,
            store,
            workload_task_key,
            workload_result_to_payload,
            workload_result_from_payload,
            kind=WORKLOAD_TASK_KIND,
            workers=workers,
            retries=retries,
            backoff_s=backoff_s,
            timeout_s=timeout_s,
            telemetry=run_telemetry,
            backend=backend,
        )
    else:
        report = run_sweep_resilient(
            tasks,
            _run_workload_task,
            workers=workers,
            retries=retries,
            backoff_s=backoff_s,
            timeout_s=timeout_s,
            telemetry=run_telemetry,
            backend=backend,
        )
    return report.results(), report
