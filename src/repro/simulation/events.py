"""Discrete-event engine.

A minimal but strict event queue: events fire in (time, insertion order)
order, callbacks may schedule further events, and time never flows
backwards.  All times are milliseconds of simulated time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[float], None]


class EventQueue:
    """Priority queue of timed callbacks with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._counter = itertools.count()
        self.now_ms = 0.0
        self._fired = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Number of events processed so far."""
        return self._fired

    def snapshot(self) -> Tuple[float, int, int]:
        """(now_ms, queued, fired) — the engine state telemetry probes
        sample; a method (not three property reads) so one probe callback
        observes a consistent triple."""
        return (self.now_ms, len(self._heap), self._fired)

    def schedule(self, time_ms: float, callback: EventCallback) -> None:
        """Schedule a callback at an absolute simulated time.

        Raises:
            SimulationError: if the time is in the simulated past.
        """
        if time_ms < self.now_ms - 1e-9:
            raise SimulationError(
                f"cannot schedule event at {time_ms} ms; now is {self.now_ms} ms"
            )
        heapq.heappush(self._heap, (time_ms, next(self._counter), callback))

    def schedule_after(self, delay_ms: float, callback: EventCallback) -> None:
        """Schedule a callback ``delay_ms`` after the current time."""
        if delay_ms < 0:
            raise SimulationError(f"delay cannot be negative, got {delay_ms}")
        self.schedule(self.now_ms + delay_ms, callback)

    def schedule_batch(self, events: Iterable[Tuple[float, EventCallback]]) -> None:
        """Schedule many (time_ms, callback) pairs at once.

        When the queue is empty — the trace-replay case, where every arrival
        is known up front — the heap is built in one O(n) heapify instead of
        n O(log n) pushes.  Ordering semantics are identical to calling
        :meth:`schedule` in iteration order.
        """
        entries = []
        for time_ms, callback in events:
            if time_ms < self.now_ms - 1e-9:
                raise SimulationError(
                    f"cannot schedule event at {time_ms} ms; now is {self.now_ms} ms"
                )
            entries.append((time_ms, next(self._counter), callback))
        if not self._heap:
            self._heap = entries
            heapq.heapify(self._heap)
        else:
            for entry in entries:
                heapq.heappush(self._heap, entry)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        time_ms, _, callback = heapq.heappop(self._heap)
        if time_ms < self.now_ms - 1e-9:  # pragma: no cover - defensive
            raise SimulationError("event queue time went backwards")
        self.now_ms = max(self.now_ms, time_ms)
        self._fired += 1
        callback(self.now_ms)
        return True

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, a time horizon, or an event budget.

        Args:
            until_ms: stop once the next event lies beyond this time (the
                event is left queued).
            max_events: stop after firing this many events (guards against
                runaway feedback loops in tests).
        """
        fired = 0
        while self._heap:
            if until_ms is not None and self._heap[0][0] > until_ms:
                self.now_ms = max(self.now_ms, until_ms)
                return
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted at t={self.now_ms} ms"
                )
            self.step()
            fired += 1
        # The heap drained before the horizon: the simulated clock still
        # advances to it, so callers scheduling relative to ``now_ms`` after
        # run() observe the same clock whether or not events filled the span.
        if until_ms is not None:
            self.now_ms = max(self.now_ms, until_ms)
