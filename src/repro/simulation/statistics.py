"""Response-time statistics and CDFs.

Figure 4 reports response-time CDFs over the bins (5, 10, 20, 40, 60, 90,
120, 150, 200, 200+) milliseconds plus the mean; this module reproduces
those quantities from the simulator's completed requests.

Percentile and CDF queries are served from an incrementally maintained
sorted view: samples accumulate in arrival order, and a query merges only
the unsorted tail into the cached sorted prefix (two sorted runs, which
timsort merges in linear time).  Interleaving ``add()`` and queries is
therefore cheap — the per-request reporting loops of the DTM policies and
the closed-loop workloads no longer pay an O(n log n) re-sort per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import SimulationError

#: The response-time bin edges (ms) of the paper's Figure 4 CDF plots.
PAPER_CDF_BINS_MS: Tuple[float, ...] = (5, 10, 20, 40, 60, 90, 120, 150, 200)


@dataclass
class ResponseTimeStats:
    """Accumulates response times and derives summary statistics."""

    samples_ms: List[float] = field(default_factory=list)
    #: sorted copy of ``samples_ms[:_sorted_len]``; lazily extended on query.
    _sorted: List[float] = field(default_factory=list, repr=False, compare=False)
    _sorted_len: int = field(default=0, repr=False, compare=False)

    def add(self, response_ms: float) -> None:
        """Record one response time (invalidates the sorted view's tail)."""
        if response_ms < 0:
            raise SimulationError(f"response time cannot be negative, got {response_ms}")
        self.samples_ms.append(response_ms)

    def __len__(self) -> int:
        return len(self.samples_ms)

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    def _sorted_view(self) -> List[float]:
        """The samples in sorted order, refreshed incrementally.

        Only the samples added since the last query are sorted; they are
        then merged with the cached sorted prefix.  If ``samples_ms`` was
        mutated out from under us (shrunk or replaced), fall back to a full
        re-sort so external list surgery stays correct.
        """
        n = len(self.samples_ms)
        if self._sorted_len > n:
            self._sorted = sorted(self.samples_ms)
            self._sorted_len = n
        elif self._sorted_len < n:
            tail = sorted(self.samples_ms[self._sorted_len :])
            merged = self._sorted + tail
            merged.sort()  # two sorted runs: timsort merges in O(n)
            self._sorted = merged
            self._sorted_len = n
        return self._sorted

    def mean_ms(self) -> float:
        """Average response time."""
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        return sum(self.samples_ms) / len(self.samples_ms)

    def percentile_ms(self, q: float) -> float:
        """q-th percentile (0 <= q <= 100), linear interpolation."""
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        if not 0 <= q <= 100:
            raise SimulationError(f"percentile must be in [0, 100], got {q}")
        data = self._sorted_view()
        if len(data) == 1:
            return data[0]
        rank = q / 100 * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def median_ms(self) -> float:
        """Median response time."""
        return self.percentile_ms(50)

    def max_ms(self) -> float:
        """Worst response time."""
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        return self._sorted_view()[-1]

    def cdf(self, bins_ms: Sequence[float] = PAPER_CDF_BINS_MS) -> List[Tuple[float, float]]:
        """Cumulative fraction of responses at or below each bin edge.

        Returns:
            [(edge_ms, fraction), ...] in increasing edge order; an
            implicit final (inf, 1.0) bin covers the "200+" tail.
        """
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        edges = sorted(bins_ms)
        data = self._sorted_view()
        result: List[Tuple[float, float]] = []
        index = 0
        for edge in edges:
            while index < len(data) and data[index] <= edge:
                index += 1
            result.append((edge, index / len(data)))
        return result

    def merged_with(self, other: "ResponseTimeStats") -> "ResponseTimeStats":
        """A new stats object pooling both sample sets."""
        return ResponseTimeStats(samples_ms=self.samples_ms + other.samples_ms)
