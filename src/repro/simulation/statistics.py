"""Response-time statistics and CDFs.

Figure 4 reports response-time CDFs over the bins (5, 10, 20, 40, 60, 90,
120, 150, 200, 200+) milliseconds plus the mean; this module reproduces
those quantities from the simulator's completed requests.

Percentile and CDF queries are served from an incrementally maintained
sorted view: samples accumulate in arrival order, and a query merges only
the unsorted tail into the cached sorted prefix (two sorted runs, which
timsort merges in linear time).  Interleaving ``add()`` and queries is
therefore cheap — the per-request reporting loops of the DTM policies and
the closed-loop workloads no longer pay an O(n log n) re-sort per query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import SimulationError

#: The response-time bin edges (ms) of the paper's Figure 4 CDF plots.
PAPER_CDF_BINS_MS: Tuple[float, ...] = (5, 10, 20, 40, 60, 90, 120, 150, 200)


def percentile_from_sorted(data: Sequence[float], q: float) -> float:
    """q-th percentile of an ascending-sorted sample, linear interpolation.

    This is the *one* percentile formula in the codebase: the incremental
    :class:`ResponseTimeStats` path and the vectorized batch path both
    evaluate exactly these IEEE-754 operations, so the two agree bit for
    bit on the same samples (the fast-path differential suite asserts it).

    Edge cases are explicit: ``q=0`` returns the minimum and ``q=100`` the
    maximum without interpolating (``rank`` is then an exact integer);
    a single sample answers every percentile; duplicate values interpolate
    between equal numbers, which is exact.
    """
    if not data:
        raise SimulationError("no samples recorded")
    if not 0 <= q <= 100:
        raise SimulationError(f"percentile must be in [0, 100], got {q}")
    if len(data) == 1:
        return data[0]
    rank = q / 100 * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if hi > len(data) - 1:  # pragma: no cover - float-safety clamp
        hi = len(data) - 1
    if lo == hi:
        return data[lo]
    frac = rank - lo
    value = data[lo] * (1 - frac) + data[hi] * frac
    # The true percentile lies in [data[lo], data[hi]]; IEEE-754 rounding
    # can land a hair outside (subnormal products underflow to zero), so
    # clamp to keep min <= p(q) <= max exact for every input.
    if value < data[lo]:
        return data[lo]
    if value > data[hi]:
        return data[hi]
    return value


def percentiles_batch(samples: "object", qs: Sequence[float]) -> "object":
    """Vectorized percentiles of an (unsorted) numpy sample vector.

    Requires numpy.  Returns a ``float64`` array, one entry per ``q``,
    each bitwise identical to ``percentile_from_sorted(sorted(samples), q)``
    — the same formula evaluated with the same float64 operations.
    """
    import numpy as np

    data = np.sort(np.asarray(samples, dtype=np.float64))
    n = int(data.size)
    if n == 0:
        raise SimulationError("no samples recorded")
    out = np.empty(len(qs), dtype=np.float64)
    for i, q in enumerate(qs):
        if not 0 <= q <= 100:
            raise SimulationError(f"percentile must be in [0, 100], got {q}")
        if n == 1:
            out[i] = data[0]
            continue
        rank = q / 100 * (n - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if hi > n - 1:  # pragma: no cover - float-safety clamp
            hi = n - 1
        if lo == hi:
            out[i] = data[lo]
        else:
            frac = rank - lo
            value = data[lo] * (1 - frac) + data[hi] * frac
            # Same clamp as percentile_from_sorted, same IEEE operations —
            # the two paths must stay bit-identical.
            if value < data[lo]:
                value = data[lo]
            elif value > data[hi]:
                value = data[hi]
            out[i] = value
    return out


def cdf_batch(
    samples: "object", bins_ms: Sequence[float] = PAPER_CDF_BINS_MS
) -> List[Tuple[float, float]]:
    """Vectorized :meth:`ResponseTimeStats.cdf` over a numpy sample vector.

    Requires numpy.  Same ``<= edge`` semantics (``searchsorted`` with
    ``side='right'`` on the sorted samples); the fraction is the same
    ``count / n`` division, so results match the scalar path bit for bit.
    """
    import numpy as np

    data = np.sort(np.asarray(samples, dtype=np.float64))
    n = int(data.size)
    if n == 0:
        raise SimulationError("no samples recorded")
    edges = sorted(bins_ms)
    counts = np.searchsorted(data, np.asarray(edges, dtype=np.float64), side="right")
    return [(edge, int(count) / n) for edge, count in zip(edges, counts)]


@dataclass
class ResponseTimeStats:
    """Accumulates response times and derives summary statistics."""

    samples_ms: List[float] = field(default_factory=list)
    #: sorted copy of ``samples_ms[:_sorted_len]``; lazily extended on query.
    _sorted: List[float] = field(default_factory=list, repr=False, compare=False)
    _sorted_len: int = field(default=0, repr=False, compare=False)

    def add(self, response_ms: float) -> None:
        """Record one response time (invalidates the sorted view's tail)."""
        if response_ms < 0:
            raise SimulationError(f"response time cannot be negative, got {response_ms}")
        self.samples_ms.append(response_ms)

    def __len__(self) -> int:
        return len(self.samples_ms)

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    def _sorted_view(self) -> List[float]:
        """The samples in sorted order, refreshed incrementally.

        Only the samples added since the last query are sorted; they are
        then merged with the cached sorted prefix.  If ``samples_ms`` was
        mutated out from under us (shrunk or replaced), fall back to a full
        re-sort so external list surgery stays correct.
        """
        n = len(self.samples_ms)
        if self._sorted_len > n:
            self._sorted = sorted(self.samples_ms)
            self._sorted_len = n
        elif self._sorted_len < n:
            tail = sorted(self.samples_ms[self._sorted_len :])
            merged = self._sorted + tail
            merged.sort()  # two sorted runs: timsort merges in O(n)
            self._sorted = merged
            self._sorted_len = n
        return self._sorted

    def mean_ms(self) -> float:
        """Average response time."""
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        return sum(self.samples_ms) / len(self.samples_ms)

    def percentile_ms(self, q: float) -> float:
        """q-th percentile (0 <= q <= 100), linear interpolation."""
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        return percentile_from_sorted(self._sorted_view(), q)

    def median_ms(self) -> float:
        """Median response time."""
        return self.percentile_ms(50)

    def max_ms(self) -> float:
        """Worst response time."""
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        return self._sorted_view()[-1]

    def cdf(self, bins_ms: Sequence[float] = PAPER_CDF_BINS_MS) -> List[Tuple[float, float]]:
        """Cumulative fraction of responses at or below each bin edge.

        Returns:
            [(edge_ms, fraction), ...] in increasing edge order; an
            implicit final (inf, 1.0) bin covers the "200+" tail.
        """
        if not self.samples_ms:
            raise SimulationError("no samples recorded")
        edges = sorted(bins_ms)
        data = self._sorted_view()
        result: List[Tuple[float, float]] = []
        index = 0
        for edge in edges:
            while index < len(data) and data[index] <= edge:
                index += 1
            result.append((edge, index / len(data)))
        return result

    def merged_with(self, other: "ResponseTimeStats") -> "ResponseTimeStats":
        """A new stats object pooling both sample sets."""
        return ResponseTimeStats(samples_ms=self.samples_ms + other.samples_ms)
