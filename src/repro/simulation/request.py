"""I/O request representation shared by the simulator layers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError

_request_ids = itertools.count()


@dataclass
class Request:
    """One block-level I/O request.

    Attributes:
        arrival_ms: simulated arrival time.
        lba: starting logical block address (512-byte sectors).
        sectors: request length in sectors; must be positive.
        is_write: write (True) or read (False).
        request_id: unique id assigned at construction.
        parent: logical request this one was split from (RAID fan-out).
        start_service_ms: when the disk began servicing it.
        completion_ms: when it completed.
    """

    arrival_ms: float
    lba: int
    sectors: int
    is_write: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))
    parent: Optional["Request"] = None
    start_service_ms: Optional[float] = None
    completion_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sectors <= 0:
            raise SimulationError(f"request length must be positive, got {self.sectors}")
        if self.lba < 0:
            raise SimulationError(f"LBA cannot be negative, got {self.lba}")
        if self.arrival_ms < 0:
            raise SimulationError(f"arrival time cannot be negative, got {self.arrival_ms}")

    @property
    def end_lba(self) -> int:
        """One past the last sector addressed."""
        return self.lba + self.sectors

    @property
    def response_time_ms(self) -> float:
        """Completion minus arrival.

        Raises:
            SimulationError: if the request has not completed.
        """
        if self.completion_ms is None:
            raise SimulationError(f"request {self.request_id} has not completed")
        return self.completion_ms - self.arrival_ms

    def overlaps(self, lba: int, sectors: int) -> bool:
        """Whether this request's range intersects [lba, lba+sectors)."""
        return self.lba < lba + sectors and lba < self.end_lba
