"""Storage array: fans logical requests out to member disks.

Implements the phased execution of :mod:`repro.simulation.raid` plans: all
children of a phase are issued together; the next phase starts when the
last child of the current phase completes; the logical request completes
with its final phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.disk import SimulatedDisk
from repro.simulation.events import EventQueue
from repro.simulation.raid import AccessPlan, ArrayGeometry
from repro.simulation.request import Request

LogicalCompletion = Callable[[Request, float], None]


@dataclass
class _InFlight:
    """Book-keeping for one logical request being executed."""

    logical: Request
    plan: AccessPlan
    phase_index: int = 0
    outstanding: int = 0
    children_issued: int = 0
    child_ids: Dict[int, int] = field(default_factory=dict)


class StorageArray:
    """A set of disks behind one logical address space.

    Args:
        disks: member disks (must all share the event queue).
        geometry: striping/RAID geometry; its ``disk_count`` must match.
        events: the simulation event queue.
        on_complete: callback for each completed logical request.
    """

    def __init__(
        self,
        disks: Sequence[SimulatedDisk],
        geometry: ArrayGeometry,
        events: EventQueue,
        on_complete: Optional[LogicalCompletion] = None,
    ) -> None:
        if len(disks) != geometry.disk_count:
            raise SimulationError(
                f"geometry expects {geometry.disk_count} disks, got {len(disks)}"
            )
        for disk in disks:
            if disk.total_sectors < geometry.disk_sectors:
                raise SimulationError(
                    f"disk {disk.name} smaller ({disk.total_sectors}) than the "
                    f"geometry's per-disk size {geometry.disk_sectors}"
                )
        self.disks = list(disks)
        self.geometry = geometry
        self.events = events
        self.on_complete = on_complete
        self._tracking: Dict[int, _InFlight] = {}
        self.completed: List[Request] = []
        for disk in self.disks:
            disk.on_complete = self._child_completed

    @property
    def logical_sectors(self) -> int:
        """Usable logical capacity in sectors."""
        return self.geometry.logical_sectors

    # -- submission ----------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Accept a logical request at the current simulated time."""
        plan = self.geometry.plan(request)
        if not plan.phases:
            raise SimulationError("geometry produced an empty plan")
        flight = _InFlight(logical=request, plan=plan)
        self._tracking[request.request_id] = flight
        self._issue_phase(flight)

    def _issue_phase(self, flight: _InFlight) -> None:
        phase = flight.plan.phases[flight.phase_index]
        flight.outstanding = len(phase)
        if flight.outstanding == 0:  # pragma: no cover - defensive
            raise SimulationError("empty phase in access plan")
        for child in phase:
            child_request = Request(
                arrival_ms=self.events.now_ms,
                lba=child.lba,
                sectors=child.sectors,
                is_write=child.is_write,
                parent=flight.logical,
            )
            flight.child_ids[child_request.request_id] = flight.phase_index
            flight.children_issued += 1
            self.disks[child.disk].submit(child_request)

    def _child_completed(self, child: Request, now: float) -> None:
        if child.parent is None:
            return
        flight = self._tracking.get(child.parent.request_id)
        if flight is None:
            raise SimulationError(
                f"completion for unknown logical request {child.parent.request_id}"
            )
        flight.outstanding -= 1
        if flight.outstanding > 0:
            return
        flight.phase_index += 1
        if flight.phase_index < len(flight.plan.phases):
            self._issue_phase(flight)
            return
        logical = flight.logical
        logical.completion_ms = now
        del self._tracking[logical.request_id]
        self.completed.append(logical)
        if self.on_complete is not None:
            self.on_complete(logical, now)

    # -- introspection ------------------------------------------------------------

    def in_flight(self) -> int:
        """Number of logical requests currently executing."""
        return len(self._tracking)
