"""Request schedulers for the per-disk queue.

FCFS matches the paper's open-loop trace replay; SSTF and LOOK (elevator)
are provided for the scheduler ablation study.

SSTF and LOOK keep their pending queues as sorted lists keyed by cylinder
(maintained with :mod:`bisect`), so picking the next request is an
O(log n) search instead of a linear scan of the queue — the dispatch path
runs once per completed request, which under the queue-bound workloads
(Openmail at base RPM) used to dominate the simulator's profile.
"""

from __future__ import annotations

import bisect
import itertools
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulation.request import Request

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.telemetry import Telemetry


class Scheduler(ABC):
    """Interface: hold pending requests, pick the next one to service."""

    @abstractmethod
    def add(self, request: Request) -> None:
        """Enqueue a request."""

    @abstractmethod
    def next(self, head_cylinder: int) -> Optional[Request]:
        """Remove and return the next request, or None if empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued requests."""


class FCFSScheduler(Scheduler):
    """First-come, first-served."""

    def __init__(self) -> None:
        self._queue: Deque[Request] = deque()

    def add(self, request: Request) -> None:
        self._queue.append(request)

    def next(self, head_cylinder: int) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class SSTFScheduler(Scheduler):
    """Shortest-seek-time-first (by cylinder distance).

    Pending requests live in a list sorted by (cylinder, arrival, insertion
    order); the nearest request is one of the two entries flanking the head
    position, found by bisection.  Ties on distance break by arrival time,
    then insertion order — the same total order the original linear scan
    produced.

    Args:
        cylinder_of: maps an LBA to its cylinder.
    """

    def __init__(self, cylinder_of: Callable[[int], int]) -> None:
        #: sorted (cylinder, arrival_ms, seq, request); seq is unique, so
        #: tuple comparison never reaches the (unorderable) request.
        self._entries: List[Tuple[int, float, int, Request]] = []
        self._cylinder_of = cylinder_of
        self._seq = itertools.count()

    def add(self, request: Request) -> None:
        entry = (
            self._cylinder_of(request.lba),
            request.arrival_ms,
            next(self._seq),
            request,
        )
        bisect.insort(self._entries, entry)

    def next(self, head_cylinder: int) -> Optional[Request]:
        entries = self._entries
        if not entries:
            return None
        split = bisect.bisect_left(entries, (head_cylinder,))
        candidates = []  # (distance, arrival, seq, index)
        if split < len(entries):  # nearest cylinder at or above the head
            cyl, arrival, seq, _ = entries[split]
            candidates.append((cyl - head_cylinder, arrival, seq, split))
        if split > 0:  # nearest cylinder strictly below the head
            below_cyl = entries[split - 1][0]
            first = bisect.bisect_left(entries, (below_cyl,))
            cyl, arrival, seq, _ = entries[first]
            candidates.append((head_cylinder - cyl, arrival, seq, first))
        index = min(candidates)[3]
        return entries.pop(index)[3]

    def __len__(self) -> int:
        return len(self._entries)


class LookScheduler(Scheduler):
    """Elevator (LOOK): sweep in one direction, reverse at the last request.

    The pending queue is a list sorted by (cylinder, insertion order); the
    next request in the sweep direction is found by bisection from the head
    position.  A request sitting exactly at the head cylinder is "ahead" in
    either direction, matching the classic formulation.

    Args:
        cylinder_of: maps an LBA to its cylinder.
    """

    def __init__(self, cylinder_of: Callable[[int], int]) -> None:
        #: sorted (cylinder, seq, request); seq keeps comparisons total.
        self._entries: List[Tuple[int, int, Request]] = []
        self._cylinder_of = cylinder_of
        self._seq = itertools.count()
        self._direction = 1

    def add(self, request: Request) -> None:
        entry = (self._cylinder_of(request.lba), next(self._seq), request)
        bisect.insort(self._entries, entry)

    def next(self, head_cylinder: int) -> Optional[Request]:
        entries = self._entries
        if not entries:
            return None
        for _ in range(2):
            if self._direction > 0:
                # First request at the lowest cylinder >= head.
                index = bisect.bisect_left(entries, (head_cylinder,))
                if index < len(entries):
                    return entries.pop(index)[2]
            else:
                # First request at the highest cylinder <= head.
                past = bisect.bisect_left(entries, (head_cylinder + 1,))
                if past > 0:
                    cyl = entries[past - 1][0]
                    index = bisect.bisect_left(entries, (cyl,))
                    return entries.pop(index)[2]
            self._direction = -self._direction
        raise SimulationError("LOOK scheduler failed to pick a request")  # pragma: no cover

    def __len__(self) -> int:
        return len(self._entries)


class InstrumentedScheduler(Scheduler):
    """Decorator adding queue-depth telemetry to any scheduler.

    Wraps the inner discipline without touching its dispatch logic:
    enqueue/dispatch counters, a live queue-depth gauge and a peak-depth
    gauge land in the telemetry registry under ``<subject>.*``.  The
    wrapper only exists when telemetry is on — :func:`make_scheduler`
    returns the bare scheduler otherwise — so the untelemetered dispatch
    path is unchanged.
    """

    def __init__(
        self, inner: Scheduler, telemetry: "Telemetry", subject: str
    ) -> None:
        self.inner = inner
        self._tel = telemetry
        self._subject = subject
        self.peak_depth = 0

    def add(self, request: Request) -> None:
        self.inner.add(request)
        depth = len(self.inner)
        self._tel.count(f"{self._subject}.sched_enqueued")
        self._tel.set_gauge(f"{self._subject}.queue_depth", depth)
        if depth > self.peak_depth:
            self.peak_depth = depth
            self._tel.set_gauge(f"{self._subject}.queue_depth_peak", depth)

    def next(self, head_cylinder: int) -> Optional[Request]:
        request = self.inner.next(head_cylinder)
        if request is not None:
            self._tel.count(f"{self._subject}.sched_dispatched")
            self._tel.set_gauge(f"{self._subject}.queue_depth", len(self.inner))
        return request

    def __len__(self) -> int:
        return len(self.inner)


def make_scheduler(
    name: str,
    cylinder_of: Callable[[int], int],
    telemetry: Optional["Telemetry"] = None,
    subject: str = "disk",
) -> Scheduler:
    """Factory by policy name: ``fcfs``, ``sstf`` or ``look``.

    Args:
        name: queue discipline.
        cylinder_of: LBA-to-cylinder mapping (position-aware policies).
        telemetry: when given (and enabled), the scheduler is wrapped in
            an :class:`InstrumentedScheduler` reporting under ``subject``.
        subject: telemetry label, typically the owning disk's name.
    """
    from repro.telemetry import maybe

    policies = {
        "fcfs": lambda: FCFSScheduler(),
        "sstf": lambda: SSTFScheduler(cylinder_of),
        "look": lambda: LookScheduler(cylinder_of),
    }
    try:
        scheduler = policies[name.lower()]()
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; choose from {sorted(policies)}"
        ) from None
    tel = maybe(telemetry)
    if tel is not None:
        return InstrumentedScheduler(scheduler, tel, subject)
    return scheduler
