"""Request schedulers for the per-disk queue.

FCFS matches the paper's open-loop trace replay; SSTF and LOOK (elevator)
are provided for the scheduler ablation study.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.simulation.request import Request


class Scheduler(ABC):
    """Interface: hold pending requests, pick the next one to service."""

    @abstractmethod
    def add(self, request: Request) -> None:
        """Enqueue a request."""

    @abstractmethod
    def next(self, head_cylinder: int) -> Optional[Request]:
        """Remove and return the next request, or None if empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued requests."""


class FCFSScheduler(Scheduler):
    """First-come, first-served."""

    def __init__(self) -> None:
        self._queue: Deque[Request] = deque()

    def add(self, request: Request) -> None:
        self._queue.append(request)

    def next(self, head_cylinder: int) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class SSTFScheduler(Scheduler):
    """Shortest-seek-time-first (by cylinder distance).

    Args:
        cylinder_of: maps an LBA to its cylinder.
    """

    def __init__(self, cylinder_of: Callable[[int], int]) -> None:
        self._pending: List[Request] = []
        self._cylinder_of = cylinder_of

    def add(self, request: Request) -> None:
        self._pending.append(request)

    def next(self, head_cylinder: int) -> Optional[Request]:
        if not self._pending:
            return None
        best_index = min(
            range(len(self._pending)),
            key=lambda i: (
                abs(self._cylinder_of(self._pending[i].lba) - head_cylinder),
                self._pending[i].arrival_ms,
            ),
        )
        return self._pending.pop(best_index)

    def __len__(self) -> int:
        return len(self._pending)


class LookScheduler(Scheduler):
    """Elevator (LOOK): sweep in one direction, reverse at the last request.

    Args:
        cylinder_of: maps an LBA to its cylinder.
    """

    def __init__(self, cylinder_of: Callable[[int], int]) -> None:
        self._pending: List[Request] = []
        self._cylinder_of = cylinder_of
        self._direction = 1

    def add(self, request: Request) -> None:
        self._pending.append(request)

    def next(self, head_cylinder: int) -> Optional[Request]:
        if not self._pending:
            return None
        for _ in range(2):
            ahead = [
                (i, self._cylinder_of(r.lba))
                for i, r in enumerate(self._pending)
                if (self._cylinder_of(r.lba) - head_cylinder) * self._direction >= 0
            ]
            if ahead:
                index, _ = min(
                    ahead, key=lambda pair: abs(pair[1] - head_cylinder)
                )
                return self._pending.pop(index)
            self._direction = -self._direction
        raise SimulationError("LOOK scheduler failed to pick a request")  # pragma: no cover

    def __len__(self) -> int:
        return len(self._pending)


def make_scheduler(name: str, cylinder_of: Callable[[int], int]) -> Scheduler:
    """Factory by policy name: ``fcfs``, ``sstf`` or ``look``."""
    policies = {
        "fcfs": lambda: FCFSScheduler(),
        "sstf": lambda: SSTFScheduler(cylinder_of),
        "look": lambda: LookScheduler(cylinder_of),
    }
    try:
        return policies[name.lower()]()
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; choose from {sorted(policies)}"
        ) from None
