"""Resilient sweep execution: result envelopes, retries, pool recovery.

The plain executor path (``executor.map``) has an all-or-nothing failure
mode: one raised exception in any worker aborts the whole sweep with a
pickled traceback and discards every completed point; a crashed worker
process breaks the pool for everyone.  This module wraps each sweep task
in a :class:`TaskEnvelope` so a run always produces *per-task outcomes*:

* ``ok`` — the worker returned a result;
* ``error`` — the worker raised; the envelope carries the exception type,
  message and full traceback text (captured worker-side, so it survives
  pickling);
* ``timeout`` — the task exceeded its deadline; the hung worker process
  is reclaimed by respawning the pool.

On top of the envelopes sit bounded **retries with exponential backoff**,
**per-task deadlines**, ``BrokenProcessPool`` **recovery** (respawn the
pool, resume from the last completed task — only unfinished tasks are
resubmitted), explicit ``KeyboardInterrupt`` handling (pending futures
are cancelled and worker processes shut down, no orphans), and a
**failure manifest** (schema ``repro.sweep_manifest/1``) for the
``--partial-results`` mode.

Fault/retry/recovery counters are mirrored into a
:class:`repro.telemetry.MetricsRegistry` when one is supplied, so the
standard exporters (JSON / CSV / Prometheus) report them.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import SimulationError, SweepExecutionError

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Schema identifier of the failure manifest document.
MANIFEST_SCHEMA = "repro.sweep_manifest/1"

#: How long one ``wait()`` poll blocks while futures are outstanding, in
#: seconds; bounds how stale per-task deadline checks can get.
POLL_INTERVAL_S = 0.05

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass
class TaskEnvelope:
    """Outcome of one sweep task across all of its attempts.

    Attributes:
        index: position in the submitted task list.
        status: ``ok`` / ``error`` / ``timeout``.
        result: the worker's return value when ``ok``, else None.
        error_type: exception class name when ``error``.
        error_message: stringified exception when ``error``/``timeout``.
        traceback_text: worker-side traceback when available (a worker
            that dies abruptly leaves none).
        attempts: how many times the task was attempted.
        elapsed_s: wall-clock duration of the *successful* attempt (or
            the last failed one).
        cached: True when the result was served from the result store
            rather than computed (``attempts`` is then 0).
    """

    index: int
    status: str = STATUS_OK
    result: Any = None
    error_type: str = ""
    error_message: str = ""
    traceback_text: str = ""
    attempts: int = 0
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }
        if self.cached:
            out["cached"] = True
        if not self.ok:
            out["error_type"] = self.error_type
            out["error_message"] = self.error_message
            out["traceback"] = self.traceback_text
        return out


@dataclass
class SweepRunReport:
    """Everything a resilient sweep produced, healthy or not.

    ``envelopes`` is in task order; ``results()`` keeps that order with
    ``None`` holes where tasks failed, so zips against the task list stay
    aligned.
    """

    envelopes: List[TaskEnvelope]
    pool_breaks: int = 0
    timeouts: int = 0
    retries: int = 0
    interrupted: bool = False
    #: result-store accounting (populated by :func:`run_sweep_cached`;
    #: ``task_keys`` is None when the run was uncached).
    store_hits: int = 0
    store_misses: int = 0
    task_keys: Optional[List[str]] = None

    def results(self) -> List[Any]:
        """Per-task results in task order (None for failed tasks)."""
        return [e.result if e.ok else None for e in self.envelopes]

    def ok_results(self) -> List[Any]:
        """Only the healthy results, still in task order."""
        return [e.result for e in self.envelopes if e.ok]

    @property
    def ok_count(self) -> int:
        return sum(1 for e in self.envelopes if e.ok)

    @property
    def failed(self) -> List[TaskEnvelope]:
        return [e for e in self.envelopes if not e.ok]

    def raise_on_failure(self) -> None:
        """Strict mode: surface the first failure as one typed error."""
        for envelope in self.envelopes:
            if not envelope.ok:
                raise SweepExecutionError(
                    f"sweep task {envelope.index} failed "
                    f"({envelope.status}) after {envelope.attempts} "
                    f"attempt(s): [{envelope.error_type}] "
                    f"{envelope.error_message}",
                    traceback_text=envelope.traceback_text,
                )

    def manifest(
        self, task_labels: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """The failure manifest document (``repro.sweep_manifest/1``).

        Args:
            task_labels: optional human-readable label per task (e.g.
                ``"tpcc@15000rpm"``); indexed by task position.
        """

        def label(index: int) -> Optional[str]:
            if task_labels is not None and index < len(task_labels):
                return task_labels[index]
            return None

        failures = []
        for envelope in self.failed:
            entry = envelope.as_dict()
            if label(envelope.index) is not None:
                entry["task"] = label(envelope.index)
            failures.append(entry)
        document = {
            "schema": MANIFEST_SCHEMA,
            "tasks_total": len(self.envelopes),
            "tasks_ok": self.ok_count,
            "tasks_failed": len(self.failed),
            "pool_breaks": self.pool_breaks,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "interrupted": self.interrupted,
            "failures": failures,
        }
        if self.task_keys is not None:
            from repro.store import STORE_SCHEMA

            document["store"] = {
                "schema": STORE_SCHEMA,
                "hits": self.store_hits,
                "misses": self.store_misses,
                "task_keys": list(self.task_keys),
            }
        return document


def _guarded_call(
    worker: Callable[[TaskT], ResultT], task: TaskT, index: int, attempt: int
) -> TaskEnvelope:
    """Run one task inside the worker process, capturing any exception.

    The traceback is rendered to text *here*, worker-side, so it crosses
    the process boundary as a plain string instead of a pickled exception
    (whose unpickling is itself a failure mode).  ``KeyboardInterrupt``
    and other ``BaseException``s deliberately propagate.
    """
    started = time.perf_counter()
    try:
        result = worker(task)
    except Exception as exc:
        return TaskEnvelope(
            index=index,
            status=STATUS_ERROR,
            error_type=type(exc).__name__,
            error_message=str(exc),
            traceback_text=traceback.format_exc(),
            attempts=attempt,
            elapsed_s=time.perf_counter() - started,
        )
    return TaskEnvelope(
        index=index,
        status=STATUS_OK,
        result=result,
        attempts=attempt,
        elapsed_s=time.perf_counter() - started,
    )


def _kill_pool(executor: ProcessPoolExecutor) -> None:
    """Shut an executor down *now*, reclaiming even hung workers.

    ``shutdown(wait=False, cancel_futures=True)`` alone never reclaims a
    worker stuck in user code, so any still-live worker processes are
    terminated explicitly.  The process table must be captured *before*
    ``shutdown`` — it clears ``_processes`` even with ``wait=False``, and
    a hung worker would otherwise keep the executor's management thread
    (and interpreter exit) blocked until the worker returned.
    """
    table = getattr(executor, "_processes", None)
    processes = list(table.values()) if table else []
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5.0)


class _Counters:
    """Optional mirror of resilience counters into a telemetry registry."""

    def __init__(self, telemetry: Optional[Any]) -> None:
        from repro.telemetry import maybe

        self._tel = maybe(telemetry)

    def count(self, name: str, amount: float = 1.0) -> None:
        if self._tel is not None:
            self._tel.count(name, amount)


def run_sweep_resilient(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    workers: Optional[int] = None,
    retries: int = 2,
    backoff_s: float = 0.0,
    timeout_s: Optional[float] = None,
    telemetry: Optional[Any] = None,
    on_result: Optional[Callable[[TaskEnvelope], None]] = None,
) -> SweepRunReport:
    """Run a sweep that survives worker faults and returns every outcome.

    Args:
        tasks: the task list (each must be picklable for the parallel
            path, as must the worker's results).
        worker: module-level pure task function.
        workers: process count (None = all cores; 0/1 = serial
            in-process, which produces identical results).
        retries: extra attempts granted to a failed task (0 = one
            attempt only).  Tasks that were in flight when the pool broke
            also consume an attempt — a task that repeatedly kills its
            worker exhausts its budget instead of wedging the sweep.
        backoff_s: base of the exponential backoff slept before retry
            ``n`` (``backoff_s * 2**(n-1)``); 0 disables sleeping.
        timeout_s: per-task deadline measured from dispatch.  Expired
            tasks are marked ``timeout`` and their (possibly hung) worker
            pool is respawned.  Not enforced on the serial path.
        telemetry: optional :class:`repro.telemetry.Telemetry`; mirrors
            ``sweep.*`` counters into its registry.
        on_result: parent-side hook invoked with each *successful*
            envelope as soon as it lands (in completion order, not task
            order).  The result store uses this to persist results
            incrementally, so even an interrupted run leaves its finished
            tasks resumable.  Exceptions propagate; wrap the hook if a
            side effect must not abort the sweep.

    Returns:
        A :class:`SweepRunReport` with one envelope per task, in task
        order, regardless of how many attempts or pool respawns it took.

    Raises:
        SimulationError: on invalid arguments.
        KeyboardInterrupt: re-raised after cancelling pending work and
            shutting the pool down (no orphaned workers).
    """
    from repro.simulation.sweep import resolve_workers

    if retries < 0:
        raise SimulationError(f"retries must be >= 0, got {retries}")
    if backoff_s < 0:
        raise SimulationError(f"backoff must be >= 0, got {backoff_s}")
    if timeout_s is not None and timeout_s <= 0:
        raise SimulationError(f"timeout must be positive, got {timeout_s}")
    counters = _Counters(telemetry)
    counters.count("sweep.tasks_total", float(len(tasks)))
    if not tasks:
        return SweepRunReport(envelopes=[])
    resolved = resolve_workers(workers, len(tasks))
    if resolved <= 1:
        report = _run_serial(
            tasks, worker, retries, backoff_s, counters, on_result
        )
    else:
        report = _run_parallel(
            tasks, worker, resolved, retries, backoff_s, timeout_s, counters,
            on_result,
        )
    counters.count("sweep.tasks_ok", float(report.ok_count))
    counters.count("sweep.tasks_failed_total", float(len(report.failed)))
    return report


def _backoff_sleep(backoff_s: float, attempt: int) -> None:
    """Sleep before retry ``attempt`` (first retry is attempt 2)."""
    if backoff_s > 0 and attempt > 1:
        time.sleep(backoff_s * (2.0 ** (attempt - 2)))


def _run_serial(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    retries: int,
    backoff_s: float,
    counters: _Counters,
    on_result: Optional[Callable[[TaskEnvelope], None]] = None,
) -> SweepRunReport:
    report = SweepRunReport(envelopes=[])
    for index, task in enumerate(tasks):
        envelope = TaskEnvelope(index=index)
        for attempt in range(1, retries + 2):
            _backoff_sleep(backoff_s, attempt)
            if attempt > 1:
                report.retries += 1
                counters.count("sweep.retries_total")
            envelope = _guarded_call(worker, task, index, attempt)
            if envelope.ok:
                if on_result is not None:
                    on_result(envelope)
                break
            counters.count("sweep.task_errors_total")
        report.envelopes.append(envelope)
    return report


def _run_parallel(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    resolved: int,
    retries: int,
    backoff_s: float,
    timeout_s: Optional[float],
    counters: _Counters,
    on_result: Optional[Callable[[TaskEnvelope], None]] = None,
) -> SweepRunReport:
    envelopes: List[Optional[TaskEnvelope]] = [None] * len(tasks)
    report = SweepRunReport(envelopes=[])
    # (index, attempt) pairs not yet finished.
    pending: List[Tuple[int, int]] = [(i, 1) for i in range(len(tasks))]
    # Tasks that were in flight when the pool broke.  A dead worker breaks
    # *every* in-flight future, so the crash cannot be attributed from the
    # exceptions alone; suspects are re-run one at a time in a fresh pool —
    # innocents complete, and a task that breaks the pool while isolated
    # is definitively the culprit and is charged the attempt.
    suspects: List[Tuple[int, int]] = []
    executor = ProcessPoolExecutor(max_workers=resolved)
    # future -> (index, attempt, dispatched_monotonic, isolated)
    running: Dict[Future, Tuple[int, int, float, bool]] = {}

    def record_failure(
        index: int, attempt: int, status: str, error_type: str, message: str,
        traceback_text: str = "", elapsed_s: float = 0.0,
    ) -> None:
        """Count one failed attempt; requeue while retry budget remains."""
        counters.count(
            "sweep.task_timeouts_total"
            if status == STATUS_TIMEOUT
            else "sweep.task_errors_total"
        )
        if attempt <= retries:
            pending.append((index, attempt + 1))
            report.retries += 1
            counters.count("sweep.retries_total")
        else:
            envelopes[index] = TaskEnvelope(
                index=index,
                status=status,
                error_type=error_type,
                error_message=message,
                traceback_text=traceback_text,
                attempts=attempt,
                elapsed_s=elapsed_s,
            )

    def respawn_pool() -> None:
        nonlocal executor
        _kill_pool(executor)
        executor = ProcessPoolExecutor(max_workers=resolved)

    def collect(future: Future, index: int, attempt: int, isolated: bool) -> bool:
        """Fold one finished future into the report; True if the pool broke."""
        try:
            envelope = future.result()
        except BrokenProcessPool:
            if isolated:
                # Alone in the pool: this task killed its own worker.
                record_failure(
                    index, attempt, STATUS_ERROR, "BrokenProcessPool",
                    "worker process died mid-task",
                )
            else:
                suspects.append((index, attempt))
            return True
        if envelope.ok:
            envelopes[index] = envelope
            if on_result is not None:
                on_result(envelope)
        else:
            record_failure(
                index, attempt, STATUS_ERROR, envelope.error_type,
                envelope.error_message, envelope.traceback_text,
                envelope.elapsed_s,
            )
        return False

    def drain_running_and_respawn(to_suspects: bool) -> None:
        """Fold finished futures, requeue the rest, start a fresh pool.

        Unfinished tasks keep their current attempt number — they were
        victims of a pool break or a neighbour's timeout, not (proven)
        culprits.  After a pool break they go to ``suspects`` for
        isolated re-execution; after a timeout respawn straight back to
        ``pending``.
        """
        for future, (index, attempt, _started, isolated) in list(running.items()):
            if future.done():
                collect(future, index, attempt, isolated)
            elif to_suspects:
                suspects.append((index, attempt))
            else:
                pending.append((index, attempt))
        running.clear()
        respawn_pool()

    def submit_one(index: int, attempt: int, isolated: bool) -> bool:
        """Dispatch one task; False when the pool turned out to be broken."""
        _backoff_sleep(backoff_s, attempt)
        try:
            future = executor.submit(
                _guarded_call, worker, tasks[index], index, attempt
            )
        except BrokenProcessPool:
            # Never dispatched: innocent by construction, back to pending.
            pending.append((index, attempt))
            return False
        running[future] = (index, attempt, time.monotonic(), isolated)
        return True

    try:
        while pending or suspects or running:
            broke = False
            if suspects:
                # Isolation mode: exactly one suspect in a quiet pool.
                if not running:
                    index, attempt = suspects.pop(0)
                    broke = not submit_one(index, attempt, isolated=True)
            else:
                while pending and len(running) < 2 * resolved:
                    index, attempt = pending.pop(0)
                    if not submit_one(index, attempt, isolated=False):
                        broke = True
                        break
            if not broke and running:
                done, _ = wait(
                    set(running), timeout=POLL_INTERVAL_S,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    index, attempt, _started, isolated = running.pop(future)
                    broke = collect(future, index, attempt, isolated) or broke
            if broke:
                report.pool_breaks += 1
                counters.count("sweep.pool_breaks_total")
                drain_running_and_respawn(to_suspects=True)
                continue
            if timeout_s is not None:
                now = time.monotonic()
                expired = {
                    future: meta
                    for future, meta in running.items()
                    if now - meta[2] > timeout_s and not future.done()
                }
                if expired:
                    report.timeouts += len(expired)
                    for future, (index, attempt, started, _iso) in expired.items():
                        del running[future]
                        record_failure(
                            index, attempt, STATUS_TIMEOUT, "TimeoutError",
                            f"task exceeded {timeout_s} s deadline",
                            elapsed_s=now - started,
                        )
                    # A timed-out task may be hung inside a worker; the
                    # only way to reclaim it is a pool respawn.  In-flight
                    # survivors are folded in or requeued at their current
                    # attempt.
                    drain_running_and_respawn(to_suspects=False)
    except KeyboardInterrupt:
        report.interrupted = True
        for future in running:
            future.cancel()
        _kill_pool(executor)
        raise
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    report.envelopes = [e for e in envelopes if e is not None]
    missing = len(tasks) - len(report.envelopes)
    if missing:  # pragma: no cover - defensive; every path fills its slot
        raise SimulationError(f"{missing} sweep task(s) produced no envelope")
    return report


# ---------------------------------------------------------------------------
# Content-addressed memoization on top of the resilient executor
# ---------------------------------------------------------------------------


def run_sweep_cached(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    store: Any,
    key_fn: Callable[[TaskT], str],
    encode: Callable[[ResultT], Any],
    decode: Callable[[Any], ResultT],
    kind: str = "",
    workers: Optional[int] = None,
    retries: int = 2,
    backoff_s: float = 0.0,
    timeout_s: Optional[float] = None,
    telemetry: Optional[Any] = None,
) -> SweepRunReport:
    """Run a sweep through a :class:`repro.store.ResultStore`.

    Every task key is looked up *before any worker is spawned*; hits
    become ``cached`` ok-envelopes instantly (zero attempts), and only
    the misses go to :func:`run_sweep_resilient`.  Each miss that
    completes is persisted immediately (not at sweep end), so a run
    killed halfway leaves its finished tasks behind as hits — that is
    the whole resume story: re-running the same configuration *is* the
    resume.

    The store is consulted defensively end to end: a corrupt entry is
    quarantined inside :meth:`ResultStore.get`; an intact entry the
    ``decode`` codec still rejects is retired via
    :meth:`ResultStore.reject`; a failing ``put`` (disk full, permission
    lost mid-run) is counted as ``store.put_failed`` and the sweep
    carries on uncached.  Cache trouble can cost recomputation, never a
    sweep.

    Args:
        store: a :class:`repro.store.ResultStore`.
        key_fn: task -> canonical content key (see
            :func:`repro.store.config_key`).
        encode / decode: result <-> JSON-safe payload codec; ``decode``
            must reconstruct a result indistinguishable from a computed
            one (the differential suite asserts byte-identity).
        kind: task-family tag stored in each envelope.
        workers / retries / backoff_s / timeout_s / telemetry: forwarded
            to :func:`run_sweep_resilient` for the misses.

    Returns:
        A :class:`SweepRunReport` covering *all* tasks in task order,
        with ``store_hits`` / ``store_misses`` / ``task_keys`` filled in
        (so ``manifest()`` grows its store section).
    """
    store.bind_telemetry(telemetry)
    keys = [key_fn(task) for task in tasks]
    slots: List[Optional[TaskEnvelope]] = [None] * len(tasks)
    miss_indices: List[int] = []
    for index, key in enumerate(keys):
        payload = store.get(key)
        result: Optional[ResultT] = None
        if payload is not None:
            try:
                result = decode(payload)
            except Exception:
                store.reject(key)
                result = None
        if result is not None:
            slots[index] = TaskEnvelope(
                index=index, status=STATUS_OK, result=result, cached=True
            )
        else:
            miss_indices.append(index)

    def persist(envelope: TaskEnvelope) -> None:
        original = miss_indices[envelope.index]
        try:
            store.put(keys[original], encode(envelope.result), kind=kind)
        except Exception:
            # Persisting is an optimization; losing it must not lose the
            # sweep.  The counter makes the silence observable.
            store.note_put_failed()

    sub = run_sweep_resilient(
        [tasks[i] for i in miss_indices],
        worker,
        workers=workers,
        retries=retries,
        backoff_s=backoff_s,
        timeout_s=timeout_s,
        telemetry=telemetry,
        on_result=persist,
    )
    for envelope, original in zip(sub.envelopes, miss_indices):
        envelope.index = original
        slots[original] = envelope
    hit_count = len(tasks) - len(miss_indices)
    return SweepRunReport(
        envelopes=[slot for slot in slots if slot is not None],
        pool_breaks=sub.pool_breaks,
        timeouts=sub.timeouts,
        retries=sub.retries,
        interrupted=sub.interrupted,
        store_hits=hit_count,
        store_misses=len(miss_indices),
        task_keys=keys,
    )
