"""Resilient sweep execution: result envelopes, retries, crash recovery.

The plain executor path (``executor.map``) has an all-or-nothing failure
mode: one raised exception in any worker aborts the whole sweep with a
pickled traceback and discards every completed point; a crashed worker
process breaks the pool for everyone.  This module wraps each sweep task
in a :class:`TaskEnvelope` so a run always produces *per-task outcomes*:

* ``ok`` — the worker returned a result;
* ``error`` — the worker raised; the envelope carries the exception type,
  message and full traceback text (captured worker-side, so it survives
  pickling);
* ``timeout`` — the task exceeded its deadline; the hung worker process
  is reclaimed by respawning the pool.

On top of the envelopes sit bounded **retries with exponential backoff**,
**per-task deadlines**, broken-fabric **recovery** (respawn, resume from
the last completed task — only unfinished tasks are resubmitted) with
**crash blame attribution** by isolated re-execution, explicit
``KeyboardInterrupt`` handling (pending work is cancelled and worker
processes shut down, no orphans), and a **failure manifest** (schema
``repro.sweep_manifest/2``) for the ``--partial-results`` mode.

All of that is **backend-agnostic**: one loop drives an
:class:`repro.simulation.backends.ExecutionBackend` (serial, process
pool, or shared-store peer coordination) through the five-method
protocol — ``submit`` / ``progress`` / ``cancel`` / ``result_by_key`` /
``shutdown`` — so every backend, including future remote ones, gets
retries, deadlines, blame attribution and manifests for free.  The
resolved backend name is recorded on the report and manifest *only*; it
never enters a store key, because the determinism contract says every
backend produces byte-identical results for the same configuration.

Fault/retry/recovery counters are mirrored into a
:class:`repro.telemetry.MetricsRegistry` when one is supplied, so the
standard exporters (JSON / CSV / Prometheus) report them.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import SimulationError, SweepExecutionError
from repro.simulation.backends import (
    POLL_INTERVAL_S,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    BackendBroken,
    ExecutionBackend,
    InFlight,
    TaskEnvelope,
    guarded_call,
    resolve_backend,
    resolve_backend_name,
)
from repro.simulation.backends.process import reap_executor

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Schema identifier of the failure manifest document.  ``/2`` added the
#: ``backend`` field recording which execution backend actually ran.
MANIFEST_SCHEMA = "repro.sweep_manifest/2"

#: Backend spec accepted by the run functions: a name (``serial`` /
#: ``process`` / ``shared-store``), a ready instance, or None (resolve
#: from ``REPRO_SWEEP_BACKEND``, default ``process``).
BackendSpec = Optional[Union[str, ExecutionBackend]]

# Backwards-compatible aliases: these moved into
# ``repro.simulation.backends`` when the execution layer became
# pluggable; existing imports (tests, embedders) keep working.
_guarded_call = guarded_call
_kill_pool = reap_executor

__all__ = [
    "MANIFEST_SCHEMA",
    "POLL_INTERVAL_S",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "BackendSpec",
    "SweepRunReport",
    "TaskEnvelope",
    "run_sweep_cached",
    "run_sweep_resilient",
]


@dataclass
class SweepRunReport:
    """Everything a resilient sweep produced, healthy or not.

    ``envelopes`` is in task order; ``results()`` keeps that order with
    ``None`` holes where tasks failed, so zips against the task list stay
    aligned.  ``backend`` names the execution backend that actually ran
    (after worker resolution — a ``process`` request over one worker
    executes, and is recorded as, ``serial``).
    """

    envelopes: List[TaskEnvelope]
    pool_breaks: int = 0
    timeouts: int = 0
    retries: int = 0
    interrupted: bool = False
    #: result-store accounting (populated by :func:`run_sweep_cached`;
    #: ``task_keys`` is None when the run was uncached).
    store_hits: int = 0
    store_misses: int = 0
    task_keys: Optional[List[str]] = None
    backend: str = ""

    def results(self) -> List[Any]:
        """Per-task results in task order (None for failed tasks)."""
        return [e.result if e.ok else None for e in self.envelopes]

    def ok_results(self) -> List[Any]:
        """Only the healthy results, still in task order."""
        return [e.result for e in self.envelopes if e.ok]

    @property
    def ok_count(self) -> int:
        return sum(1 for e in self.envelopes if e.ok)

    @property
    def failed(self) -> List[TaskEnvelope]:
        return [e for e in self.envelopes if not e.ok]

    def raise_on_failure(self) -> None:
        """Strict mode: surface the first failure as one typed error."""
        for envelope in self.envelopes:
            if not envelope.ok:
                raise SweepExecutionError(
                    f"sweep task {envelope.index} failed "
                    f"({envelope.status}) after {envelope.attempts} "
                    f"attempt(s): [{envelope.error_type}] "
                    f"{envelope.error_message}",
                    traceback_text=envelope.traceback_text,
                )

    def manifest(
        self, task_labels: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """The failure manifest document (``repro.sweep_manifest/2``).

        Args:
            task_labels: optional human-readable label per task (e.g.
                ``"tpcc@15000rpm"``); indexed by task position.
        """

        def label(index: int) -> Optional[str]:
            if task_labels is not None and index < len(task_labels):
                return task_labels[index]
            return None

        failures = []
        for envelope in self.failed:
            entry = envelope.as_dict()
            if label(envelope.index) is not None:
                entry["task"] = label(envelope.index)
            failures.append(entry)
        document = {
            "schema": MANIFEST_SCHEMA,
            "backend": self.backend,
            "tasks_total": len(self.envelopes),
            "tasks_ok": self.ok_count,
            "tasks_failed": len(self.failed),
            "pool_breaks": self.pool_breaks,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "interrupted": self.interrupted,
            "failures": failures,
        }
        if self.task_keys is not None:
            from repro.store import STORE_SCHEMA

            document["store"] = {
                "schema": STORE_SCHEMA,
                "hits": self.store_hits,
                "misses": self.store_misses,
                "task_keys": list(self.task_keys),
            }
        return document


class _Counters:
    """Optional mirror of resilience counters into a telemetry registry."""

    def __init__(self, telemetry: Optional[Any]) -> None:
        from repro.telemetry import maybe

        self._tel = maybe(telemetry)

    def count(self, name: str, amount: float = 1.0) -> None:
        if self._tel is not None:
            self._tel.count(name, amount)


def _backoff_sleep(backoff_s: float, attempt: int) -> None:
    """Sleep before retry ``attempt`` (first retry is attempt 2)."""
    if backoff_s > 0 and attempt > 1:
        time.sleep(backoff_s * (2.0 ** (attempt - 2)))


def _backend_label(backend: BackendSpec) -> str:
    """The name a backend spec would resolve to (no construction)."""
    if isinstance(backend, ExecutionBackend):
        return backend.name
    return resolve_backend_name(backend)


def run_sweep_resilient(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    workers: Optional[int] = None,
    retries: int = 2,
    backoff_s: float = 0.0,
    timeout_s: Optional[float] = None,
    telemetry: Optional[Any] = None,
    on_result: Optional[Callable[[TaskEnvelope], None]] = None,
    backend: BackendSpec = None,
) -> SweepRunReport:
    """Run a sweep that survives worker faults and returns every outcome.

    Args:
        tasks: the task list (each must be picklable for the process
            backend, as must the worker's results).
        worker: module-level pure task function.
        workers: process count (None = all cores; 0/1 = serial
            in-process, which produces identical results).
        retries: extra attempts granted to a failed task (0 = one
            attempt only).  Tasks that were in flight when the fabric
            broke also consume an attempt — a task that repeatedly kills
            its worker exhausts its budget instead of wedging the sweep.
        backoff_s: base of the exponential backoff slept before retry
            ``n`` (``backoff_s * 2**(n-1)``); 0 disables sleeping.
        timeout_s: per-task deadline measured from dispatch.  Expired
            tasks are marked ``timeout`` and their (possibly hung)
            execution fabric is reclaimed.  Only enforced on backends
            that report in-flight work — not on the serial path.
        telemetry: optional :class:`repro.telemetry.Telemetry`; mirrors
            ``sweep.*`` counters into its registry.
        on_result: parent-side hook invoked with each *successful*
            envelope as soon as it lands (in completion order, not task
            order).  The result store uses this to persist results
            incrementally, so even an interrupted run leaves its finished
            tasks resumable.  Exceptions propagate; wrap the hook if a
            side effect must not abort the sweep.
        backend: backend name, instance, or None (env /
            ``process`` default); see
            :func:`repro.simulation.backends.resolve_backend`.  The
            ``shared-store`` name cannot be resolved here — it needs
            content keys and a codec, which only
            :func:`run_sweep_cached` can supply.

    Returns:
        A :class:`SweepRunReport` with one envelope per task, in task
        order, regardless of how many attempts or fabric respawns it
        took.

    Raises:
        SimulationError: on invalid arguments.
        KeyboardInterrupt: re-raised after cancelling pending work and
            shutting the fabric down (no orphaned workers).
    """
    if retries < 0:
        raise SimulationError(f"retries must be >= 0, got {retries}")
    if backoff_s < 0:
        raise SimulationError(f"backoff must be >= 0, got {backoff_s}")
    if timeout_s is not None and timeout_s <= 0:
        raise SimulationError(f"timeout must be positive, got {timeout_s}")
    counters = _Counters(telemetry)
    counters.count("sweep.tasks_total", float(len(tasks)))
    if not tasks:
        return SweepRunReport(envelopes=[], backend=_backend_label(backend))
    resolved = resolve_backend(
        backend, tasks, worker, workers=workers, counters=counters.count
    )
    counters.count(
        "sweep.backend.selected."
        + resolved.name.replace("-", "_")
    )
    report = _run_with_backend(
        tasks, resolved, retries, backoff_s, timeout_s, counters, on_result
    )
    counters.count("sweep.tasks_ok", float(report.ok_count))
    counters.count("sweep.tasks_failed_total", float(len(report.failed)))
    return report


def _run_with_backend(
    tasks: Sequence[TaskT],
    backend: ExecutionBackend,
    retries: int,
    backoff_s: float,
    timeout_s: Optional[float],
    counters: _Counters,
    on_result: Optional[Callable[[TaskEnvelope], None]] = None,
) -> SweepRunReport:
    """The one resilience loop every backend runs under.

    Bookkeeping lives entirely on this side of the protocol: the backend
    only knows about ``(index, attempt)`` tickets, while retries,
    deadlines and blame stay identical across serial, process-pool and
    shared-store execution.
    """
    envelopes: List[Optional[TaskEnvelope]] = [None] * len(tasks)
    report = SweepRunReport(envelopes=[], backend=backend.name)
    # Tickets not yet dispatched (or requeued for another attempt).
    pending: Deque[Tuple[int, int]] = deque((i, 1) for i in range(len(tasks)))
    # Tickets that were in flight when the fabric broke.  A dead worker
    # breaks *every* in-flight attempt, so the crash cannot be attributed
    # from the wreckage alone; suspects are re-run one at a time on a
    # quiet fabric — innocents complete, and a ticket that breaks the
    # fabric while isolated is definitively the culprit and is charged
    # the attempt.
    suspects: List[Tuple[int, int]] = []
    # Tickets submitted to the backend and not yet folded into the report.
    outstanding: Set[Tuple[int, int]] = set()
    isolated: Optional[Tuple[int, int]] = None

    def record_failure(
        index: int, attempt: int, status: str, error_type: str, message: str,
        traceback_text: str = "", elapsed_s: float = 0.0,
    ) -> None:
        """Count one failed attempt; requeue while retry budget remains."""
        counters.count(
            "sweep.task_timeouts_total"
            if status == STATUS_TIMEOUT
            else "sweep.task_errors_total"
        )
        if attempt <= retries:
            pending.append((index, attempt + 1))
            report.retries += 1
            counters.count("sweep.retries_total")
        else:
            envelopes[index] = TaskEnvelope(
                index=index,
                status=status,
                error_type=error_type,
                error_message=message,
                traceback_text=traceback_text,
                attempts=attempt,
                elapsed_s=elapsed_s,
            )

    def submit_one(index: int, attempt: int) -> bool:
        """Dispatch one ticket; False when the fabric turned out broken."""
        _backoff_sleep(backoff_s, attempt)
        try:
            backend.submit(index, attempt)
        except BackendBroken:
            # Never dispatched: innocent by construction, back to pending.
            pending.append((index, attempt))
            return False
        outstanding.add((index, attempt))
        return True

    def reclaim_fabric(to_suspects: bool) -> None:
        """Cancel the backend and requeue whatever didn't finish.

        Unfinished tickets keep their current attempt number — they were
        victims of a fabric break or a neighbour's timeout, not (proven)
        culprits.  After a break they go to ``suspects`` for isolated
        re-execution; after a timeout straight back to ``pending``.
        Attempts that completed before the cancel stay ``outstanding``;
        the backend buffers them and the next ``progress`` delivers them
        normally.
        """
        nonlocal isolated
        for ticket in backend.cancel():
            if ticket in outstanding:
                outstanding.discard(ticket)
                (suspects if to_suspects else pending).append(ticket)
        isolated = None

    try:
        while pending or suspects or outstanding:
            broke = False
            if suspects:
                # Isolation mode: exactly one suspect on a quiet fabric.
                if not outstanding:
                    ticket = suspects.pop(0)
                    if submit_one(*ticket):
                        isolated = ticket
                    else:
                        broke = True
            else:
                while pending and len(outstanding) < backend.capacity:
                    index, attempt = pending.popleft()
                    if not submit_one(index, attempt):
                        broke = True
                        break
            in_flight: List[InFlight] = []
            if not broke and outstanding:
                progress = backend.progress(POLL_INTERVAL_S)
                in_flight = progress.in_flight
                for completion in progress.completions:
                    ticket = (completion.index, completion.attempt)
                    if ticket not in outstanding:
                        # Superseded: this ticket was requeued by an
                        # earlier cancel; the late result of a pure
                        # worker is safe to drop.
                        continue
                    outstanding.discard(ticket)
                    was_isolated = ticket == isolated
                    if was_isolated:
                        isolated = None
                    if completion.broken:
                        broke = True
                        if was_isolated:
                            # Alone on the fabric: this ticket killed
                            # its own worker.
                            record_failure(
                                completion.index, completion.attempt,
                                STATUS_ERROR, "BrokenProcessPool",
                                "worker process died mid-task",
                            )
                        else:
                            suspects.append(ticket)
                        continue
                    envelope = completion.envelope
                    if envelope is None:  # pragma: no cover - defensive
                        continue
                    if envelope.ok:
                        envelopes[completion.index] = envelope
                        if on_result is not None:
                            on_result(envelope)
                    else:
                        record_failure(
                            completion.index, completion.attempt,
                            STATUS_ERROR, envelope.error_type,
                            envelope.error_message, envelope.traceback_text,
                            envelope.elapsed_s,
                        )
            if broke:
                report.pool_breaks += 1
                counters.count("sweep.pool_breaks_total")
                reclaim_fabric(to_suspects=True)
                continue
            if timeout_s is not None and in_flight:
                now = time.monotonic()
                expired = [
                    flight
                    for flight in in_flight
                    if now - flight.since_monotonic > timeout_s
                    and (flight.index, flight.attempt) in outstanding
                ]
                if expired:
                    report.timeouts += len(expired)
                    for flight in expired:
                        outstanding.discard((flight.index, flight.attempt))
                        record_failure(
                            flight.index, flight.attempt, STATUS_TIMEOUT,
                            "TimeoutError",
                            f"task exceeded {timeout_s} s deadline",
                            elapsed_s=now - flight.since_monotonic,
                        )
                    # An expired attempt may be hung inside a worker; the
                    # only way to reclaim it is cancelling the fabric.
                    # In-flight survivors are requeued at their current
                    # attempt (or delivered from the backend's buffer).
                    reclaim_fabric(to_suspects=False)
    except KeyboardInterrupt:
        report.interrupted = True
        backend.cancel()
        raise
    finally:
        backend.shutdown()
    report.envelopes = [e for e in envelopes if e is not None]
    missing = len(tasks) - len(report.envelopes)
    if missing:  # pragma: no cover - defensive; every path fills its slot
        raise SimulationError(f"{missing} sweep task(s) produced no envelope")
    return report


# ---------------------------------------------------------------------------
# Content-addressed memoization on top of the resilient executor
# ---------------------------------------------------------------------------


def run_sweep_cached(
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    store: Any,
    key_fn: Callable[[TaskT], str],
    encode: Callable[[ResultT], Any],
    decode: Callable[[Any], ResultT],
    kind: str = "",
    workers: Optional[int] = None,
    retries: int = 2,
    backoff_s: float = 0.0,
    timeout_s: Optional[float] = None,
    telemetry: Optional[Any] = None,
    backend: BackendSpec = None,
    on_result: Optional[Callable[[TaskEnvelope], None]] = None,
) -> SweepRunReport:
    """Run a sweep through a :class:`repro.store.ResultStore`.

    Every task key is looked up *before any worker is spawned*; hits
    become ``cached`` ok-envelopes instantly (zero attempts), and only
    the misses go to :func:`run_sweep_resilient`.  Each miss that
    completes is persisted immediately (not at sweep end), so a run
    killed halfway leaves its finished tasks behind as hits — that is
    the whole resume story: re-running the same configuration *is* the
    resume.

    The store is consulted defensively end to end: a corrupt entry is
    quarantined inside :meth:`ResultStore.get`; an intact entry the
    ``decode`` codec still rejects is retired via
    :meth:`ResultStore.reject`; a failing ``put`` (disk full, permission
    lost mid-run) is counted as ``store.put_failed`` and the sweep
    carries on uncached.  Cache trouble can cost recomputation, never a
    sweep.

    This is also the only entry point that can resolve the
    ``shared-store`` backend: it owns the per-task content keys and the
    codec that backend coordinates through.  A backend that persists
    results itself (``persists_results``) runs without the local persist
    hook — exactly one ``put`` per computed miss either way.

    Args:
        store: a :class:`repro.store.ResultStore`.
        key_fn: task -> canonical content key (see
            :func:`repro.store.config_key`).  Backend choice never
            enters the key.
        encode / decode: result <-> JSON-safe payload codec; ``decode``
            must reconstruct a result indistinguishable from a computed
            one (the differential suite asserts byte-identity).
        kind: task-family tag stored in each envelope.
        workers / retries / backoff_s / timeout_s / telemetry: forwarded
            to :func:`run_sweep_resilient` for the misses.
        backend: backend name, instance, or None (env / ``process``
            default).
        on_result: optional per-task progress hook, called once per ok
            envelope with ``envelope.index`` already remapped to the
            *original* task position: first for every store hit (in task
            order, before any worker spawns), then for each computed
            miss in completion order, after it has been persisted.  An
            exception raised by the hook aborts the sweep (the backend
            is shut down on the way out) — the job service uses exactly
            that for graceful drain.

    Returns:
        A :class:`SweepRunReport` covering *all* tasks in task order,
        with ``store_hits`` / ``store_misses`` / ``task_keys`` filled in
        (so ``manifest()`` grows its store section).
    """
    store.bind_telemetry(telemetry)
    keys = [key_fn(task) for task in tasks]
    slots: List[Optional[TaskEnvelope]] = [None] * len(tasks)
    miss_indices: List[int] = []
    for index, key in enumerate(keys):
        payload = store.get(key)
        result: Optional[ResultT] = None
        if payload is not None:
            try:
                result = decode(payload)
            except Exception:
                store.reject(key)
                result = None
        if result is not None:
            slots[index] = TaskEnvelope(
                index=index, status=STATUS_OK, result=result, cached=True
            )
        else:
            miss_indices.append(index)
    if on_result is not None:
        # Hits are delivered to the hook up front, in task order, before
        # the miss run starts — a fully-cached job streams all its
        # progress without ever resolving a backend.
        for slot in slots:
            if slot is not None:
                on_result(slot)

    def landed(envelope: TaskEnvelope) -> None:
        original = miss_indices[envelope.index]
        if not persists:
            try:
                store.put(keys[original], encode(envelope.result), kind=kind)
            except Exception:
                # Persisting is an optimization; losing it must not lose
                # the sweep.  The counter makes the silence observable.
                store.note_put_failed()
        if on_result is not None:
            # Remap to the caller's task numbering before surfacing; the
            # positional remap after the sub-run assigns the same value.
            envelope.index = original
            on_result(envelope)

    miss_tasks = [tasks[i] for i in miss_indices]
    counters = _Counters(telemetry)
    resolved: BackendSpec = backend
    if miss_tasks and not isinstance(backend, ExecutionBackend):
        resolved = resolve_backend(
            backend,
            miss_tasks,
            worker,
            workers=workers,
            keys=[keys[i] for i in miss_indices],
            store=store,
            encode=encode,
            decode=decode,
            kind=kind,
            counters=counters.count,
        )
    persists = isinstance(resolved, ExecutionBackend) and resolved.persists_results
    needs_hook = on_result is not None or not persists
    sub = run_sweep_resilient(
        miss_tasks,
        worker,
        workers=workers,
        retries=retries,
        backoff_s=backoff_s,
        timeout_s=timeout_s,
        telemetry=telemetry,
        on_result=landed if needs_hook else None,
        backend=resolved,
    )
    for envelope, original in zip(sub.envelopes, miss_indices):
        envelope.index = original
        slots[original] = envelope
    hit_count = len(tasks) - len(miss_indices)
    return SweepRunReport(
        envelopes=[slot for slot in slots if slot is not None],
        pool_breaks=sub.pool_breaks,
        timeouts=sub.timeouts,
        retries=sub.retries,
        interrupted=sub.interrupted,
        store_hits=hit_count,
        store_misses=len(miss_indices),
        task_keys=keys,
        backend=sub.backend,
    )
