"""The simulated disk drive.

Ties together the ZBR layout, the mechanical timing engine, the buffer
cache and a request scheduler behind an event-driven interface: callers
submit requests and receive a completion callback; the disk services one
request at a time, drawing the next from its scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.capacity.zones import ZonedSurface
from repro.errors import SimulationError
from repro.geometry.platter import Platter
from repro.performance.seek import SeekModel, seek_parameters_for_platter
from repro.simulation.cache import DiskCache
from repro.simulation.events import EventQueue
from repro.simulation.layout import DiskLayout
from repro.simulation.mechanics import DiskMechanics, ServiceBreakdown
from repro.simulation.request import Request
from repro.simulation.scheduler import FCFSScheduler, Scheduler
from repro.units import (
    BYTES_PER_SECTOR,
    MIB,
    interface_mb_per_s_to_bytes_per_s,
    seconds_to_ms,
)

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.faults import DiskFaultInjector
    from repro.telemetry import Telemetry

CompletionCallback = Callable[[Request, float], None]

#: Electronic service time for a cache hit, milliseconds.
CACHE_HIT_MS = 0.1


@dataclass
class DiskStats:
    """Operational counters for one disk."""

    requests_completed: int = 0
    reads: int = 0
    writes: int = 0
    busy_ms: float = 0.0
    seek_ms: float = 0.0
    rotational_ms: float = 0.0
    transfer_ms: float = 0.0
    seeks_with_movement: int = 0
    total_seek_cylinders: int = 0
    faults_injected: int = 0
    fault_ms: float = 0.0
    _last: float = field(default=0.0, repr=False)

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of elapsed time the disk was servicing requests."""
        if elapsed_ms <= 0:
            return 0.0
        return min(self.busy_ms / elapsed_ms, 1.0)

    def mean_seek_distance(self) -> float:
        """Average cylinders moved per completed request."""
        if self.requests_completed == 0:
            return 0.0
        return self.total_seek_cylinders / self.requests_completed


class SimulatedDisk:
    """One disk attached to an event queue.

    Args:
        name: label used in error messages.
        layout: LBA mapping.
        seek_model: seek-time curve.
        rpm: spindle speed.
        events: the simulation's event queue.
        cache: buffer cache (None disables caching).
        scheduler: queue discipline (default FCFS).
        bus_mb_per_s: interface transfer rate (Ultra160-class default).
        on_complete: callback fired at each request completion.
        fault_injector: deterministic media/servo fault source; charges
            extra latency on media accesses (cache hits are immune).
    """

    def __init__(
        self,
        name: str,
        layout: DiskLayout,
        seek_model: SeekModel,
        rpm: float,
        events: EventQueue,
        cache: Optional[DiskCache] = None,
        scheduler: Optional[Scheduler] = None,
        bus_mb_per_s: float = 160.0,
        on_complete: Optional[CompletionCallback] = None,
        telemetry: Optional["Telemetry"] = None,
        fault_injector: Optional["DiskFaultInjector"] = None,
    ) -> None:
        if bus_mb_per_s <= 0:
            raise SimulationError("bus rate must be positive")
        self.name = name
        self.layout = layout
        self.seek_model = seek_model
        self.events = events
        self.cache = cache
        self.scheduler = scheduler if scheduler is not None else FCFSScheduler()
        self.bus_mb_per_s = bus_mb_per_s
        self.on_complete = on_complete
        self.fault_injector = fault_injector
        self.mechanics = DiskMechanics(layout, seek_model, rpm)
        self.head_cylinder = 0
        self.busy = False
        self.stats = DiskStats()
        from repro.telemetry import maybe

        #: one pointer check per hook keeps the untelemetered path free.
        self._tel = maybe(telemetry)
        if self._tel is not None and cache is not None:
            cache.bind_telemetry(self._tel, name)

    # -- configuration ------------------------------------------------------------

    @property
    def rpm(self) -> float:
        """Current spindle speed."""
        return self.mechanics.rpm

    def set_rpm(self, rpm: float) -> None:
        """Change spindle speed (multi-speed disks); in-flight service times
        already scheduled are unaffected."""
        previous = self.mechanics.rpm
        self.mechanics = DiskMechanics(self.layout, self.seek_model, rpm)
        if self._tel is not None and rpm != previous:
            self._tel.record(
                self.events.now_ms,
                "rpm_change",
                self.name,
                from_rpm=previous,
                to_rpm=rpm,
            )
            self._tel.count(f"{self.name}.rpm_changes")
            self._tel.set_gauge(f"{self.name}.rpm", rpm)

    @property
    def total_sectors(self) -> int:
        """Disk size in sectors."""
        return self.layout.total_sectors

    def capacity_bytes(self) -> int:
        """Disk size in bytes."""
        return self.total_sectors * BYTES_PER_SECTOR

    # -- submission ----------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Accept a request at the current simulated time."""
        if request.end_lba > self.total_sectors:
            raise SimulationError(
                f"{self.name}: request [{request.lba}, {request.end_lba}) "
                f"exceeds disk size {self.total_sectors}"
            )
        if self.busy:
            self.scheduler.add(request)
        else:
            self._begin(request, self.events.now_ms)

    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self.scheduler)

    # -- service -------------------------------------------------------------------

    def _bus_ms(self, sectors: int) -> float:
        bytes_per_s = interface_mb_per_s_to_bytes_per_s(self.bus_mb_per_s)
        return seconds_to_ms(sectors * BYTES_PER_SECTOR / bytes_per_s)

    def _service_time(self, request: Request, now: float) -> float:
        """Service time for a request starting now, updating cache/head."""
        bus = self._bus_ms(request.sectors)
        if request.is_write:
            if self.cache is not None:
                self.cache.note_write(request.lba, request.sectors)
            breakdown, end_cyl = self.mechanics.service(
                now, self.head_cylinder, request.lba, request.sectors
            )
            self._account(breakdown, request)
            self.head_cylinder = end_cyl
            return breakdown.total_ms + bus + self._fault_penalty_ms(now)
        if self.cache is not None and self.cache.lookup_read(request.lba, request.sectors):
            if self._tel is not None:
                self._tel.record(
                    now, "cache_hit", self.name, lba=request.lba, sectors=request.sectors
                )
            return CACHE_HIT_MS + bus
        if self._tel is not None and self.cache is not None:
            self._tel.record(
                now, "cache_miss", self.name, lba=request.lba, sectors=request.sectors
            )
        breakdown, end_cyl = self.mechanics.service(
            now, self.head_cylinder, request.lba, request.sectors
        )
        self._account(breakdown, request)
        self.head_cylinder = end_cyl
        if self.cache is not None:
            self.cache.fill_after_read(request.lba, request.sectors, self.total_sectors)
        return breakdown.total_ms + bus + self._fault_penalty_ms(now)

    def _fault_penalty_ms(self, now: float) -> float:
        """Injected-fault latency for one media access (0 when healthy).

        Consulted only on paths that touch the media — cache hits never
        fault — so the injector's per-access ordinal advances identically
        in any run that replays the same trace.
        """
        if self.fault_injector is None:
            return 0.0
        fault = self.fault_injector.media_access_fault(self.mechanics)
        if fault is None:
            return 0.0
        self.stats.faults_injected += 1
        self.stats.fault_ms += fault.extra_ms
        if self._tel is not None:
            self._tel.record(
                now,
                "fault_injected",
                self.name,
                fault=fault.kind,
                extra_ms=fault.extra_ms,
                ecc_retries=fault.ecc_retries,
            )
            self._tel.count(f"{self.name}.faults_injected")
            self._tel.count("faults.injected")
            self._tel.observe("faults.extra_ms", fault.extra_ms)
        return fault.extra_ms

    def _account(self, breakdown: ServiceBreakdown, request: Request) -> None:
        self.stats.seek_ms += breakdown.seek_ms
        self.stats.rotational_ms += breakdown.rotational_ms
        self.stats.transfer_ms += breakdown.transfer_ms
        target = self.layout.cylinder_of(request.lba)
        distance = abs(target - self.head_cylinder)
        if distance > 0:
            self.stats.seeks_with_movement += 1
            self.stats.total_seek_cylinders += distance
            if self._tel is not None:
                self._tel.record(
                    self.events.now_ms,
                    "seek",
                    self.name,
                    cylinders=distance,
                    seek_ms=breakdown.seek_ms,
                )
                self._tel.observe(f"{self.name}.seek_ms", breakdown.seek_ms)

    def _begin(self, request: Request, now: float) -> None:
        self.busy = True
        request.start_service_ms = now
        service = self._service_time(request, now)
        self.stats.busy_ms += service
        if self._tel is not None:
            self._tel.record(
                now,
                "request_dispatch",
                self.name,
                lba=request.lba,
                sectors=request.sectors,
                write=request.is_write,
                queued=len(self.scheduler),
                service_ms=service,
            )
            self._tel.observe(f"{self.name}.service_ms", service)
        self.events.schedule(now + service, lambda t, r=request: self._finish(r, t))

    def _finish(self, request: Request, now: float) -> None:
        request.completion_ms = now
        self.stats.requests_completed += 1
        if request.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        if self._tel is not None:
            self._tel.record(
                now,
                "request_complete",
                self.name,
                lba=request.lba,
                sectors=request.sectors,
                write=request.is_write,
                wait_ms=now - request.arrival_ms,
            )
            self._tel.count(f"{self.name}.requests")
        if self.on_complete is not None:
            self.on_complete(request, now)
        next_request = self.scheduler.next(self.head_cylinder)
        if next_request is not None:
            self._begin(next_request, now)
        else:
            self.busy = False


def standard_disk(
    name: str,
    events: EventQueue,
    diameter_in: float = 3.3,
    platters: int = 2,
    kbpi: float = 480.0,
    ktpi: float = 30.0,
    rpm: float = 10000.0,
    zone_count: int = 30,
    cache_bytes: int = 4 * MIB,
    scheduler: Optional[Scheduler] = None,
    on_complete: Optional[CompletionCallback] = None,
    telemetry: Optional["Telemetry"] = None,
    fault_injector: Optional["DiskFaultInjector"] = None,
) -> SimulatedDisk:
    """Convenience factory: a disk built from drive-model parameters.

    Uses the library's capacity model to derive the ZBR layout and the
    platter-size seek correlation for the seek curve — the same path the
    paper uses to synthesize drives "for the appropriate year".
    """
    from repro.capacity.recording import RecordingTechnology

    platter = Platter(diameter_in=diameter_in)
    surface = ZonedSurface(
        platter=platter,
        technology=RecordingTechnology.from_kilo_units(kbpi, ktpi),
        zone_count=zone_count,
    )
    layout = DiskLayout(surface, surfaces=2 * platters)
    seek_model = SeekModel(
        seek_parameters_for_platter(diameter_in), cylinders=surface.cylinders
    )
    cache = DiskCache(size_bytes=cache_bytes) if cache_bytes > 0 else None
    return SimulatedDisk(
        name=name,
        layout=layout,
        seek_model=seek_model,
        rpm=rpm,
        events=events,
        cache=cache,
        scheduler=scheduler,
        on_complete=on_complete,
        telemetry=telemetry,
        fault_injector=fault_injector,
    )
