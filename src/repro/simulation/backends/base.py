"""The execution-backend protocol and its shared currency.

A sweep is a list of pure tasks and a pure worker function; *where* the
attempts actually execute — in this process, on a hardened process pool,
or coordinated across processes through a shared result-store directory
— is an :class:`ExecutionBackend`.  The resilience layer
(:mod:`repro.simulation.resilience`) sits **above** this protocol: it
owns retries, backoff, per-task deadlines, crash blame attribution and
the failure manifest, and drives any backend through the same five
methods.  A new backend therefore inherits the whole resilience story
for free, and the differential determinism suite can assert that every
backend serializes to byte-identical canonical results.

The protocol is deliberately small:

* :meth:`ExecutionBackend.submit` — dispatch one ``(index, attempt)``
  ticket; raises :class:`BackendBroken` when the fabric is already dead
  at dispatch time (the ticket was never started and is innocent).
* :meth:`ExecutionBackend.progress` — deliver finished attempts as
  :class:`Completion` records and report what is still genuinely in
  flight (asynchronous work only; a backend that computes synchronously
  inside ``progress`` reports nothing in flight, which is exactly why
  per-task deadlines are not enforced on the serial path).
* :meth:`ExecutionBackend.cancel` — reclaim the fabric *now* (kill hung
  workers, release claim files) and return the tickets that were in
  flight but did not finish, so the caller can requeue or blame them.
  Attempts that finished before the cancel are buffered and delivered
  by the next ``progress`` call — completed work is never discarded.
* :meth:`ExecutionBackend.result_by_key` — serve a result by content
  key without computing it, when the backend has a medium that can
  (the shared-store backend reads results computed by peer processes;
  purely local backends return ``None``).
* :meth:`ExecutionBackend.shutdown` — graceful end-of-run teardown;
  idempotent, safe after ``cancel``.

Everything a backend returns travels as a :class:`TaskEnvelope` — the
same per-task outcome record the resilience layer has always used — so
worker-side tracebacks, attempt counts and timings are uniform across
backends.
"""

from __future__ import annotations

import abc
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

__all__ = [
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "POLL_INTERVAL_S",
    "TaskEnvelope",
    "guarded_call",
    "Completion",
    "InFlight",
    "BackendProgress",
    "BackendBroken",
    "CounterHook",
    "ExecutionBackend",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: How long one ``progress()`` poll may block while work is outstanding,
#: in seconds; bounds how stale per-task deadline checks can get.
POLL_INTERVAL_S = 0.05

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"

#: Telemetry mirror signature: ``hook(counter_name, amount)``.
CounterHook = Callable[[str, float], None]


@dataclass
class TaskEnvelope:
    """Outcome of one sweep task across all of its attempts.

    Attributes:
        index: position in the submitted task list.
        status: ``ok`` / ``error`` / ``timeout``.
        result: the worker's return value when ``ok``, else None.
        error_type: exception class name when ``error``.
        error_message: stringified exception when ``error``/``timeout``.
        traceback_text: worker-side traceback when available (a worker
            that dies abruptly leaves none).
        attempts: how many times the task was attempted.
        elapsed_s: wall-clock duration of the *successful* attempt (or
            the last failed one).
        cached: True when the result was served from the result store
            rather than computed (``attempts`` is then 0) — including a
            result a shared-store peer computed and published.
    """

    index: int
    status: str = STATUS_OK
    result: Any = None
    error_type: str = ""
    error_message: str = ""
    traceback_text: str = ""
    attempts: int = 0
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }
        if self.cached:
            out["cached"] = True
        if not self.ok:
            out["error_type"] = self.error_type
            out["error_message"] = self.error_message
            out["traceback"] = self.traceback_text
        return out


def guarded_call(
    worker: Callable[[TaskT], ResultT], task: TaskT, index: int, attempt: int
) -> TaskEnvelope:
    """Run one task attempt, capturing any exception into its envelope.

    The traceback is rendered to text *here* — inside whatever process
    executes the attempt — so it crosses any process boundary as a plain
    string instead of a pickled exception (whose unpickling is itself a
    failure mode).  ``KeyboardInterrupt`` and other ``BaseException``s
    deliberately propagate.
    """
    started = time.perf_counter()
    try:
        result = worker(task)
    except Exception as exc:
        return TaskEnvelope(
            index=index,
            status=STATUS_ERROR,
            error_type=type(exc).__name__,
            error_message=str(exc),
            traceback_text=traceback.format_exc(),
            attempts=attempt,
            elapsed_s=time.perf_counter() - started,
        )
    return TaskEnvelope(
        index=index,
        status=STATUS_OK,
        result=result,
        attempts=attempt,
        elapsed_s=time.perf_counter() - started,
    )


@dataclass(frozen=True)
class Completion:
    """One finished attempt, as reported by ``progress()``.

    ``broken=True`` means the attempt's fabric died under it (a worker
    process exiting mid-task); ``envelope`` is then None and blame is
    the resilience layer's job (the crash cannot be attributed from the
    wreckage alone when several attempts shared the fabric).
    """

    index: int
    attempt: int
    envelope: Optional[TaskEnvelope]
    broken: bool = False


@dataclass(frozen=True)
class InFlight:
    """One attempt the backend is genuinely still working on (or waiting
    for), with the monotonic instant that work started — the deadline
    clock the resilience layer reads."""

    index: int
    attempt: int
    since_monotonic: float


@dataclass
class BackendProgress:
    """Everything one ``progress()`` call has to say."""

    completions: List[Completion] = field(default_factory=list)
    in_flight: List[InFlight] = field(default_factory=list)


class BackendBroken(RuntimeError):
    """The execution fabric died at dispatch time.

    Raised by ``submit`` when the ticket could not be started at all;
    the ticket is innocent by construction and should be requeued.  This
    is resilience-layer control flow, not a user-facing error — the
    caller reclaims the fabric with ``cancel()`` and carries on.
    """


class ExecutionBackend(abc.ABC):
    """Where sweep attempts execute (see module docstring).

    Concrete backends are constructed per run with the task list and the
    worker function; the resilience layer then owns the instance and
    guarantees exactly one ``shutdown()`` at end of run (``cancel()``
    may additionally happen any number of times in between).

    Attributes:
        name: the resolved backend name recorded on run manifests
            (``serial`` / ``process`` / ``shared-store``).
        capacity: how many tickets may usefully be in flight at once;
            the resilience layer submits no more than this before
            polling.
        persists_results: True when the backend itself publishes each
            completed result to the result store as part of its
            transport contract (the shared-store backend must, so peer
            processes can read it); the caching layer then skips its own
            persist hook to avoid double writes.
    """

    name: str = "?"
    capacity: int = 1
    persists_results: bool = False

    def __init__(self, counters: Optional[CounterHook] = None) -> None:
        self._counters = counters

    def _count(self, counter: str, amount: float = 1.0) -> None:
        """Mirror one ``sweep.backend.*`` counter when telemetry is bound."""
        if self._counters is not None:
            self._counters(counter, amount)

    @abc.abstractmethod
    def submit(self, index: int, attempt: int) -> None:
        """Dispatch one attempt of task ``index``.

        Raises:
            BackendBroken: the fabric is already dead; the ticket was
                never started.
        """

    @abc.abstractmethod
    def progress(self, timeout_s: float = POLL_INTERVAL_S) -> BackendProgress:
        """Deliver finished attempts; block at most ``timeout_s``.

        Backends that compute synchronously (serial, shared-store local
        compute) finish at most one ticket per call so the caller's
        retry/deadline bookkeeping stays fresh.
        """

    @abc.abstractmethod
    def cancel(self) -> List[Tuple[int, int]]:
        """Reclaim the fabric now; return unfinished ``(index, attempt)``s.

        Attempts that finished before the cancel are buffered for the
        next ``progress()`` call, never discarded.  After ``cancel`` the
        backend must accept fresh ``submit`` calls (a process pool
        respawns lazily).
        """

    @abc.abstractmethod
    def result_by_key(self, key: str) -> Optional[Any]:
        """Serve a result payload by content key without computing it.

        Returns None when this backend has no medium that could know the
        key (the purely local backends) or the key is simply absent.
        """

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Graceful end-of-run teardown; idempotent, safe after cancel."""
