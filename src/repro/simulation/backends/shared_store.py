"""Shared-store execution backend: coordination through a ResultStore.

The seed of remote execution.  Several processes pointed at the same
store directory can run the same sweep concurrently; they partition the
work dynamically through per-key *claim files* (see
``ResultStore.try_claim``) instead of a message bus:

1. For each ticket the backend first tries to **claim** the task's
   content key.  Winning the claim means *we* compute: run the worker,
   ``put`` the encoded result into the store, release the claim.
2. Losing the claim means a peer is computing.  The ticket parks in the
   waiting set; each ``progress`` call re-checks it — when the peer's
   claim disappears and the result is readable, the ticket completes
   with a ``cached`` envelope (the decoded peer result, zero attempts
   of our own).
3. A claim we have *locally observed unchanged* for ``stale_claim_s``
   (monotonic clock, anchored at our own first observation of that
   claim's mtime) with no result behind it is treated as a tombstone of
   a dead peer: the claim is broken and the ticket goes back to the
   pending queue for a fresh claim attempt.  Staleness is never derived
   from ``time.time() - mtime`` — on a shared (e.g. NFS) store the
   mtime comes from the peer's clock, and clock skew would make a live
   claim look ancient and get broken mid-compute.  The break itself
   goes through ``ResultStore.break_claim_if_stale``, which re-stats
   and refuses when the mtime moved since our observation began.

Correctness never depends on the claims: results stay content-addressed
and digest-verified, so the worst a racing or crashed peer can cause is
a duplicate computation of the same pure function — byte-identical by
the determinism contract the differential suite enforces.

Waiting tickets are reported as in-flight with the instant the wait
began, so the resilience layer's per-task deadline bounds how long a
ticket can wait on a silent peer before timing out like any other task.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .base import (
    POLL_INTERVAL_S,
    BackendProgress,
    Completion,
    CounterHook,
    ExecutionBackend,
    InFlight,
    TaskEnvelope,
    guarded_call,
)

__all__ = ["SharedStoreBackend", "DEFAULT_STALE_CLAIM_S"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: After this many seconds an unreleased claim with no result behind it is
#: presumed orphaned by a dead peer and may be broken.  Long enough that a
#: healthy peer mid-simulation keeps its claim; short enough that a crashed
#: one delays the sweep by about a minute, not forever.  The clock is our
#: own monotonic one, started when *we* first observed the claim's current
#: mtime — never the difference between our wall clock and the peer's.
DEFAULT_STALE_CLAIM_S = 60.0


@dataclass
class _PeerWait:
    """One ticket parked behind a peer's claim.

    ``observed_mtime`` is the claim-generation token from
    ``ResultStore.claim_mtime`` and ``observed_since`` the local
    monotonic instant we first saw that token; staleness is the span the
    token has stayed unchanged under our own observation, which is
    immune to peer clock skew.
    """

    attempt: int
    wait_started: float
    observed_mtime: Optional[float]
    observed_since: float


class SharedStoreBackend(ExecutionBackend):
    """Execute attempts locally, coordinating with peers via claim files."""

    name = "shared-store"
    #: The backend itself publishes each computed result (step 1 above);
    #: the caching layer must not persist again on top.
    persists_results = True

    def __init__(
        self,
        tasks: Sequence[TaskT],
        worker: Callable[[TaskT], ResultT],
        keys: Sequence[str],
        store: Any,
        encode: Callable[[ResultT], Any],
        decode: Callable[[Any], ResultT],
        kind: str = "",
        stale_claim_s: float = DEFAULT_STALE_CLAIM_S,
        counters: Optional[CounterHook] = None,
    ) -> None:
        super().__init__(counters)
        if len(keys) != len(tasks):
            from repro.errors import SimulationError

            raise SimulationError(
                f"shared-store backend needs one key per task, got "
                f"{len(keys)} key(s) for {len(tasks)} task(s)"
            )
        self._tasks = tasks
        self._worker = worker
        self._keys = list(keys)
        self._store = store
        self._encode = encode
        self._decode = decode
        self._kind = kind
        self._stale_claim_s = stale_claim_s
        # Every ticket can be queued at once; local compute still happens
        # one per progress() call, but peers drain the rest meanwhile.
        self.capacity = max(1, len(tasks))
        self._pending: Deque[Tuple[int, int]] = deque()
        # index -> _PeerWait for claim-lost tickets.
        self._waiting: Dict[int, _PeerWait] = {}
        # Claims this process currently holds (released on cancel).
        self._held_claims: Dict[int, str] = {}

    def submit(self, index: int, attempt: int) -> None:
        self._pending.append((index, attempt))
        self._count("sweep.backend.submits_total")

    def progress(self, timeout_s: float = POLL_INTERVAL_S) -> BackendProgress:
        progress = BackendProgress()
        self._poll_waiting(progress)
        computed = self._compute_one(progress)
        if not computed and not progress.completions and self._waiting:
            # Nothing local to do: we are purely waiting on peers.  Yield
            # briefly so the poll loop doesn't spin on claim stat calls.
            time.sleep(min(timeout_s, POLL_INTERVAL_S))
        progress.in_flight = [
            InFlight(index=index, attempt=wait.attempt, since_monotonic=wait.wait_started)
            for index, wait in self._waiting.items()
        ]
        return progress

    def _poll_waiting(self, progress: BackendProgress) -> None:
        """Re-check every peer-owned ticket for a result or a stale claim."""
        for index in list(self._waiting):
            wait = self._waiting[index]
            attempt = wait.attempt
            key = self._keys[index]
            mtime = self._store.claim_mtime(key)
            if mtime is None:
                # Peer released its claim: the result should be readable.
                payload = self._store.get(key)
                result: Optional[Any] = None
                if payload is not None:
                    try:
                        result = self._decode(payload)
                    except Exception:
                        self._store.reject(key)
                        result = None
                del self._waiting[index]
                if result is not None:
                    self._count("sweep.backend.peer_results_total")
                    self._count("sweep.backend.completions_total")
                    progress.completions.append(
                        Completion(
                            index=index,
                            attempt=attempt,
                            envelope=TaskEnvelope(
                                index=index, result=result, cached=True
                            ),
                        )
                    )
                else:
                    # Claim gone but no (valid) result — the peer crashed
                    # between release and put, or the entry was corrupt.
                    # Recompute ourselves.
                    self._pending.appendleft((index, attempt))
                continue
            # Claim-generation identity, not numeric closeness: any mtime
            # change means a refreshed or re-won claim.
            if (
                wait.observed_mtime is None
                or mtime != wait.observed_mtime  # thermolint: disable=TL002
            ):
                # New claim generation (or our first sighting of this
                # one): restart the staleness clock from now, on *our*
                # monotonic clock.
                wait.observed_mtime = mtime
                wait.observed_since = time.monotonic()
            elif time.monotonic() - wait.observed_since > self._stale_claim_s:
                # We watched this exact claim sit unchanged, resultless,
                # for the whole stale window: presumed dead peer.  The
                # store re-stats under us and refuses if the claim moved
                # between our stat and the unlink.
                self._count("sweep.backend.stale_claims_total")
                if self._store.break_claim_if_stale(key, wait.observed_mtime):
                    del self._waiting[index]
                    self._pending.appendleft((index, attempt))
                else:
                    # Lost the break race to a live peer; observe the new
                    # claim generation on the next poll.
                    wait.observed_mtime = None

    def _compute_one(self, progress: BackendProgress) -> bool:
        """Claim-and-compute at most one pending ticket; True if one ran."""
        while self._pending:
            index, attempt = self._pending.popleft()
            key = self._keys[index]
            if not self._store.try_claim(key):
                # A peer owns it; park the ticket and try the next one.
                now = time.monotonic()
                self._waiting[index] = _PeerWait(
                    attempt=attempt,
                    wait_started=now,
                    observed_mtime=self._store.claim_mtime(key),
                    observed_since=now,
                )
                continue
            self._held_claims[index] = key
            try:
                envelope = guarded_call(
                    self._worker, self._tasks[index], index, attempt
                )
                if envelope.ok:
                    try:
                        self._store.put(
                            key, self._encode(envelope.result), kind=self._kind
                        )
                    except Exception:
                        # Publishing is an optimization for peers; losing
                        # it must not lose our own computed result.
                        self._store.note_put_failed()
            finally:
                del self._held_claims[index]
                try:
                    self._store.release_claim(key)
                except OSError:
                    # Counted by the store.  The result is already
                    # computed (and usually published); peers will break
                    # the leaked claim after the stale window, so don't
                    # let the release failure eat the envelope.
                    pass
            self._count("sweep.backend.completions_total")
            progress.completions.append(
                Completion(index=index, attempt=attempt, envelope=envelope)
            )
            return True
        return False

    def cancel(self) -> List[Tuple[int, int]]:
        for key in self._held_claims.values():
            try:
                self._store.release_claim(key)
            except OSError:
                # Already counted by the store; one stuck claim must not
                # leak the remaining held claims or abort the cancel.
                pass
        self._held_claims.clear()
        unfinished = list(self._pending)
        unfinished.extend(
            (index, wait.attempt) for index, wait in self._waiting.items()
        )
        self._pending.clear()
        self._waiting.clear()
        if unfinished:
            self._count("sweep.backend.cancelled_total", float(len(unfinished)))
        return unfinished

    def result_by_key(self, key: str) -> Optional[Any]:
        payload = self._store.get(key)
        if payload is None:
            return None
        try:
            return self._decode(payload)
        except Exception:
            self._store.reject(key)
            return None

    def shutdown(self) -> None:
        self.cancel()
