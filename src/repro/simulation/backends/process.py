"""Hardened process-pool execution backend.

Wraps ``concurrent.futures.ProcessPoolExecutor`` behind the
:class:`~repro.simulation.backends.base.ExecutionBackend` protocol.  The
pool is created lazily (a cancel leaves the backend ready to respawn on
the next submit) and every teardown path — backend cancel, end-of-run
shutdown after an interrupt, and the resilience layer's hung-pool
respawn — goes through one helper, :func:`reap_executor`, so the
process-table-capture ordering bug class can only be fixed (or broken)
in one place.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .base import (
    POLL_INTERVAL_S,
    BackendBroken,
    BackendProgress,
    Completion,
    CounterHook,
    ExecutionBackend,
    InFlight,
    guarded_call,
)

__all__ = ["ProcessPoolBackend", "reap_executor"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def reap_executor(executor: ProcessPoolExecutor) -> None:
    """Shut an executor down *now*, reclaiming even hung workers.

    ``shutdown(wait=False, cancel_futures=True)`` alone never reclaims a
    worker stuck in user code, so any still-live worker processes are
    terminated explicitly.  The process table must be captured *before*
    ``shutdown`` — it clears ``_processes`` even with ``wait=False``, and
    a hung worker would otherwise keep the executor's management thread
    (and interpreter exit) blocked until the worker returned.

    This is the single kill path shared by the backend-facing
    ``cancel()``, the resilience layer's hung-pool respawn, and
    interrupt teardown; callers must never capture the process table or
    call ``shutdown(wait=False)`` themselves.
    """
    table = getattr(executor, "_processes", None)
    processes = list(table.values()) if table else []
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5.0)


class ProcessPoolBackend(ExecutionBackend):
    """Execute attempts on a lazily-(re)spawned process pool."""

    name = "process"

    def __init__(
        self,
        tasks: Sequence[TaskT],
        worker: Callable[[TaskT], ResultT],
        workers: int,
        counters: Optional[CounterHook] = None,
    ) -> None:
        super().__init__(counters)
        self._tasks = tasks
        self._worker = worker
        self._workers = max(1, workers)
        # Keep the pool saturated while bounding parent-side memory for
        # completed-but-uncollected futures.
        self.capacity = 2 * self._workers
        self._executor: Optional[ProcessPoolExecutor] = None
        # future -> (index, attempt, dispatched_monotonic)
        self._running: Dict["Future[Any]", Tuple[int, int, float]] = {}
        # Attempts that finished during a cancel are delivered by the
        # next progress() call — completed work is never discarded.
        self._buffered: List[Completion] = []

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        return self._executor

    def submit(self, index: int, attempt: int) -> None:
        try:
            future = self._pool().submit(
                guarded_call, self._worker, self._tasks[index], index, attempt
            )
        except BrokenProcessPool as exc:
            raise BackendBroken(str(exc)) from exc
        self._running[future] = (index, attempt, time.monotonic())
        self._count("sweep.backend.submits_total")

    def progress(self, timeout_s: float = POLL_INTERVAL_S) -> BackendProgress:
        progress = BackendProgress()
        if self._buffered:
            progress.completions.extend(self._buffered)
            self._buffered.clear()
        elif self._running:
            done, _ = wait(
                set(self._running), timeout=timeout_s,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                index, attempt, _started = self._running.pop(future)
                progress.completions.append(self._collect(future, index, attempt))
        progress.in_flight = [
            InFlight(index=index, attempt=attempt, since_monotonic=started)
            for index, attempt, started in self._running.values()
        ]
        return progress

    def _collect(self, future: "Future[Any]", index: int, attempt: int) -> Completion:
        try:
            envelope = future.result()
        except BrokenProcessPool:
            self._count("sweep.backend.broken_total")
            return Completion(index=index, attempt=attempt, envelope=None, broken=True)
        self._count("sweep.backend.completions_total")
        return Completion(index=index, attempt=attempt, envelope=envelope)

    def cancel(self) -> List[Tuple[int, int]]:
        unfinished: List[Tuple[int, int]] = []
        for future, (index, attempt, _started) in list(self._running.items()):
            if future.done():
                self._buffered.append(self._collect(future, index, attempt))
            else:
                future.cancel()
                unfinished.append((index, attempt))
        self._running.clear()
        if self._executor is not None:
            reap_executor(self._executor)
            self._executor = None
        if unfinished:
            self._count("sweep.backend.cancelled_total", float(len(unfinished)))
        return unfinished

    def result_by_key(self, key: str) -> Optional[Any]:
        return None

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._running.clear()
