"""Pluggable execution backends for the sweep machinery.

``serial``, ``process`` and ``shared-store`` implementations of the
:class:`~repro.simulation.backends.base.ExecutionBackend` protocol, plus
the name/env resolution used by the CLI (``--backend``) and the
``REPRO_SWEEP_BACKEND`` environment variable.  The resilience layer
(:mod:`repro.simulation.resilience`) drives whichever backend resolves;
see :mod:`repro.simulation.backends.base` for the protocol contract.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Sequence, TypeVar, Union

from .base import (
    POLL_INTERVAL_S,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    BackendBroken,
    BackendProgress,
    Completion,
    CounterHook,
    ExecutionBackend,
    InFlight,
    TaskEnvelope,
    guarded_call,
)
from .process import ProcessPoolBackend, reap_executor
from .serial import SerialBackend
from .shared_store import DEFAULT_STALE_CLAIM_S, SharedStoreBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendBroken",
    "BackendProgress",
    "Completion",
    "CounterHook",
    "DEFAULT_STALE_CLAIM_S",
    "ExecutionBackend",
    "InFlight",
    "POLL_INTERVAL_S",
    "ProcessPoolBackend",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SerialBackend",
    "SharedStoreBackend",
    "TaskEnvelope",
    "guarded_call",
    "reap_executor",
    "resolve_backend",
    "resolve_backend_name",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_SWEEP_BACKEND"

#: The resolvable backend names, in documentation order.
BACKEND_NAMES = ("serial", "process", "shared-store")


def resolve_backend_name(name: Optional[str]) -> str:
    """Resolve a backend name: explicit arg > env var > ``process``.

    Raises:
        SimulationError: on a name outside :data:`BACKEND_NAMES`.
    """
    from repro.errors import SimulationError

    source = "argument"
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR)
        source = f"env {BACKEND_ENV_VAR}"
    if name is None or not name.strip():
        return "process"
    cleaned = name.strip().lower()
    if cleaned not in BACKEND_NAMES:
        raise SimulationError(
            f"unknown execution backend {name!r} (from {source}); "
            f"expected one of {', '.join(BACKEND_NAMES)}"
        )
    return cleaned


def resolve_backend(
    name: Optional[Union[str, ExecutionBackend]],
    tasks: Sequence[TaskT],
    worker: Callable[[TaskT], ResultT],
    workers: Optional[int] = None,
    keys: Optional[Sequence[str]] = None,
    store: Optional[Any] = None,
    encode: Optional[Callable[[ResultT], Any]] = None,
    decode: Optional[Callable[[Any], ResultT]] = None,
    kind: str = "",
    stale_claim_s: float = DEFAULT_STALE_CLAIM_S,
    counters: Optional[CounterHook] = None,
) -> ExecutionBackend:
    """Build the backend a sweep will actually run on.

    An :class:`ExecutionBackend` instance passes through untouched (for
    tests and embedders that construct their own).  A name (or None —
    see :func:`resolve_backend_name`) selects a construction:

    * ``serial`` — always :class:`SerialBackend`.
    * ``process`` — :class:`ProcessPoolBackend`, except when the worker
      resolution (``resolve_workers``) lands on <= 1 worker, where the
      serial backend is returned instead: that is what actually runs,
      and the manifest must record the truth (``workers=0`` has always
      meant in-process execution).
    * ``shared-store`` — :class:`SharedStoreBackend`; requires a result
      store plus per-task content keys and a codec, which only the
      cached sweep paths can supply.

    Raises:
        SimulationError: unknown name, or ``shared-store`` without a
            store/keys/codec.
    """
    from repro.errors import SimulationError

    if isinstance(name, ExecutionBackend):
        return name
    resolved = resolve_backend_name(name)
    if resolved == "shared-store":
        if store is None or keys is None or encode is None or decode is None:
            raise SimulationError(
                "the shared-store backend coordinates through a result "
                "store and needs per-task content keys plus a codec; run "
                "it through the cached sweep path (a workload sweep with "
                "--store), not a raw/roadmap sweep"
            )
        return SharedStoreBackend(
            tasks,
            worker,
            keys=keys,
            store=store,
            encode=encode,
            decode=decode,
            kind=kind,
            stale_claim_s=stale_claim_s,
            counters=counters,
        )
    from repro.simulation.sweep import resolve_workers

    effective = resolve_workers(workers, len(tasks))
    if resolved == "serial" or effective <= 1:
        return SerialBackend(tasks, worker, counters=counters)
    return ProcessPoolBackend(tasks, worker, effective, counters=counters)
