"""In-process serial execution backend.

Runs every attempt synchronously in the calling process — the reference
backend for the differential determinism suite and the forced choice for
pure-analytic sweeps (where process spawn costs more than the maths).
``submit`` only queues; the actual compute happens one ticket per
``progress`` call, so the resilience loop above keeps identical shape
across backends.  Nothing is ever reported in flight, which preserves
the long-standing contract that per-task deadlines are not enforced on
the serial path (a deadline cannot preempt the calling thread anyway).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Sequence, Tuple, TypeVar

from .base import (
    POLL_INTERVAL_S,
    BackendProgress,
    Completion,
    CounterHook,
    ExecutionBackend,
    guarded_call,
)

__all__ = ["SerialBackend"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


class SerialBackend(ExecutionBackend):
    """Execute attempts inline, one per ``progress`` call."""

    name = "serial"
    capacity = 1

    def __init__(
        self,
        tasks: Sequence[TaskT],
        worker: Callable[[TaskT], ResultT],
        counters: Optional[CounterHook] = None,
    ) -> None:
        super().__init__(counters)
        self._tasks = tasks
        self._worker = worker
        self._queue: Deque[Tuple[int, int]] = deque()

    def submit(self, index: int, attempt: int) -> None:
        self._queue.append((index, attempt))
        self._count("sweep.backend.submits_total")

    def progress(self, timeout_s: float = POLL_INTERVAL_S) -> BackendProgress:
        progress = BackendProgress()
        if not self._queue:
            return progress
        index, attempt = self._queue.popleft()
        envelope = guarded_call(self._worker, self._tasks[index], index, attempt)
        progress.completions.append(
            Completion(index=index, attempt=attempt, envelope=envelope)
        )
        self._count("sweep.backend.completions_total")
        return progress

    def cancel(self) -> List[Tuple[int, int]]:
        unfinished = list(self._queue)
        self._queue.clear()
        if unfinished:
            self._count("sweep.backend.cancelled_total", float(len(unfinished)))
        return unfinished

    def result_by_key(self, key: str) -> Optional[Any]:
        return None

    def shutdown(self) -> None:
        self._queue.clear()
