"""Striping and RAID-5 across multiple disks.

The logical address space is striped over the member disks in fixed stripe
units.  RAID-0 simply scatters; RAID-5 (left-symmetric, the common layout)
rotates a parity unit across the disks and services small writes with the
classic read-modify-write: read old data and old parity, then write new
data and new parity.  Full-stripe writes skip the pre-read.

A logical request is decomposed into *phases*; all children of a phase run
concurrently, and a phase may only start when the previous one finished
(the RMW write phase waits for its pre-reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.simulation.request import Request


@dataclass(frozen=True)
class ChildAccess:
    """One physical access derived from a logical request.

    Attributes:
        disk: member-disk index.
        lba: physical LBA on that disk.
        sectors: length.
        is_write: whether this child writes.
    """

    disk: int
    lba: int
    sectors: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.sectors <= 0:
            raise SimulationError("child access must be non-empty")
        if self.lba < 0 or self.disk < 0:
            raise SimulationError("child access indices must be non-negative")


@dataclass
class AccessPlan:
    """The phased decomposition of one logical request."""

    phases: List[List[ChildAccess]] = field(default_factory=list)

    def all_children(self) -> Iterator[ChildAccess]:
        for phase in self.phases:
            yield from phase


class ArrayGeometry:
    """Base striping geometry.

    Args:
        disk_count: number of member disks.
        stripe_unit_sectors: contiguous sectors per disk per stripe row
            (the paper's RAID-5 uses 16 x 512-byte blocks).
        disk_sectors: usable sectors per member disk.
    """

    def __init__(self, disk_count: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        if disk_count < 1:
            raise SimulationError(f"need at least one disk, got {disk_count}")
        if stripe_unit_sectors < 1:
            raise SimulationError("stripe unit must be positive")
        if disk_sectors < stripe_unit_sectors:
            raise SimulationError("disk smaller than one stripe unit")
        self.disk_count = disk_count
        self.stripe_unit = stripe_unit_sectors
        self.disk_sectors = disk_sectors

    @property
    def logical_sectors(self) -> int:
        """Usable logical capacity in sectors."""
        raise NotImplementedError

    def plan(self, request: Request) -> AccessPlan:
        """Decompose a logical request into phased child accesses."""
        raise NotImplementedError

    def _check_range(self, request: Request) -> None:
        if request.end_lba > self.logical_sectors:
            raise SimulationError(
                f"logical access [{request.lba}, {request.end_lba}) exceeds "
                f"array capacity {self.logical_sectors}"
            )

    def _units(self, request: Request) -> Iterator[Tuple[int, int, int]]:
        """Yield (stripe_unit_index, offset_in_unit, length) runs."""
        lba = request.lba
        remaining = request.sectors
        while remaining > 0:
            unit = lba // self.stripe_unit
            offset = lba % self.stripe_unit
            length = min(remaining, self.stripe_unit - offset)
            yield unit, offset, length
            lba += length
            remaining -= length


class Raid0Geometry(ArrayGeometry):
    """Plain striping (also used for the paper's non-RAID multi-disk
    systems, where data is spread across independent spindles)."""

    @property
    def logical_sectors(self) -> int:
        units_per_disk = self.disk_sectors // self.stripe_unit
        return units_per_disk * self.stripe_unit * self.disk_count

    def locate_unit(self, unit: int) -> Tuple[int, int]:
        """(disk, physical start LBA) of a logical stripe unit."""
        disk = unit % self.disk_count
        row = unit // self.disk_count
        return disk, row * self.stripe_unit

    def plan(self, request: Request) -> AccessPlan:
        self._check_range(request)
        children: List[ChildAccess] = []
        for unit, offset, length in self._units(request):
            disk, start = self.locate_unit(unit)
            children.append(
                ChildAccess(
                    disk=disk, lba=start + offset, sectors=length, is_write=request.is_write
                )
            )
        return AccessPlan(phases=[_coalesce(children)])


class Raid5Geometry(ArrayGeometry):
    """Left-symmetric RAID-5.

    In stripe row ``r`` the parity lives on disk ``(n-1-r) mod n`` and data
    units fill the remaining disks starting just after the parity disk.
    """

    def __init__(self, disk_count: int, stripe_unit_sectors: int, disk_sectors: int) -> None:
        if disk_count < 3:
            raise SimulationError(f"RAID-5 needs >= 3 disks, got {disk_count}")
        super().__init__(disk_count, stripe_unit_sectors, disk_sectors)

    @property
    def data_disks(self) -> int:
        return self.disk_count - 1

    @property
    def logical_sectors(self) -> int:
        rows = self.disk_sectors // self.stripe_unit
        return rows * self.stripe_unit * self.data_disks

    def parity_disk(self, row: int) -> int:
        """Parity disk of a stripe row."""
        return (self.disk_count - 1 - row % self.disk_count) % self.disk_count

    def locate_unit(self, unit: int) -> Tuple[int, int]:
        """(disk, physical start LBA) of a logical data unit."""
        row = unit // self.data_disks
        position = unit % self.data_disks
        parity = self.parity_disk(row)
        disk = (parity + 1 + position) % self.disk_count
        return disk, row * self.stripe_unit

    def plan(self, request: Request) -> AccessPlan:
        self._check_range(request)
        if not request.is_write:
            children: List[ChildAccess] = []
            for unit, offset, length in self._units(request):
                disk, start = self.locate_unit(unit)
                children.append(
                    ChildAccess(disk=disk, lba=start + offset, sectors=length, is_write=False)
                )
            return AccessPlan(phases=[_coalesce(children)])
        return self._plan_write(request)

    def _plan_write(self, request: Request) -> AccessPlan:
        by_row: Dict[int, List[Tuple[int, int, int]]] = {}
        for unit, offset, length in self._units(request):
            by_row.setdefault(unit // self.data_disks, []).append((unit, offset, length))
        pre_reads: List[ChildAccess] = []
        writes: List[ChildAccess] = []
        for row, runs in sorted(by_row.items()):
            parity = self.parity_disk(row)
            parity_lba = row * self.stripe_unit
            full_units = {u for u, off, ln in runs if off == 0 and ln == self.stripe_unit}
            full_stripe = len(full_units) == self.data_disks
            for unit, offset, length in runs:
                disk, start = self.locate_unit(unit)
                writes.append(
                    ChildAccess(disk=disk, lba=start + offset, sectors=length, is_write=True)
                )
                if not full_stripe:
                    pre_reads.append(
                        ChildAccess(disk=disk, lba=start + offset, sectors=length, is_write=False)
                    )
            writes.append(
                ChildAccess(disk=parity, lba=parity_lba, sectors=self.stripe_unit, is_write=True)
            )
            if not full_stripe:
                pre_reads.append(
                    ChildAccess(
                        disk=parity, lba=parity_lba, sectors=self.stripe_unit, is_write=False
                    )
                )
        phases: List[List[ChildAccess]] = []
        if pre_reads:
            phases.append(_coalesce(pre_reads))
        phases.append(_coalesce(writes))
        return AccessPlan(phases=phases)


class Raid1Geometry(ArrayGeometry):
    """Mirrored pair (RAID-1).

    Writes propagate to both disks; reads are served by ``read_target``,
    which DTM policies may steer — the paper (§5.4) suggests directing
    reads at one mirror while the other cools, then alternating.

    The stripe unit is irrelevant for mirroring; the logical space equals
    one member disk.
    """

    def __init__(self, disk_sectors: int) -> None:
        super().__init__(disk_count=2, stripe_unit_sectors=1, disk_sectors=disk_sectors)
        self.read_target = 0

    @property
    def logical_sectors(self) -> int:
        return self.disk_sectors

    def set_read_target(self, disk: int) -> None:
        """Point subsequent reads at one mirror."""
        if disk not in (0, 1):
            raise SimulationError(f"mirror index must be 0 or 1, got {disk}")
        self.read_target = disk

    def plan(self, request: Request) -> AccessPlan:
        self._check_range(request)
        if request.is_write:
            children = [
                ChildAccess(disk=d, lba=request.lba, sectors=request.sectors, is_write=True)
                for d in (0, 1)
            ]
            return AccessPlan(phases=[children])
        child = ChildAccess(
            disk=self.read_target,
            lba=request.lba,
            sectors=request.sectors,
            is_write=False,
        )
        return AccessPlan(phases=[[child]])


def _coalesce(children: Sequence[ChildAccess]) -> List[ChildAccess]:
    """Merge physically contiguous same-disk, same-direction accesses."""
    merged: List[ChildAccess] = []
    for child in sorted(children, key=lambda c: (c.disk, c.is_write, c.lba)):
        if (
            merged
            and merged[-1].disk == child.disk
            and merged[-1].is_write == child.is_write
            and merged[-1].lba + merged[-1].sectors == child.lba
        ):
            last = merged[-1]
            merged[-1] = ChildAccess(
                disk=last.disk,
                lba=last.lba,
                sectors=last.sectors + child.sectors,
                is_write=last.is_write,
            )
        else:
            merged.append(child)
    return merged
