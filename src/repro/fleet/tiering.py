"""Energy-aware extent tiering across multi-speed drives.

Per PAPERS.md "Energy-Aware Disk Storage Management": data extents have
wildly skewed access heat, so a rack of multi-speed drives can
concentrate the hot extents on a few full-speed spindles and let the
rest idle down the ladder — spending thermal slack where the accesses
are instead of spinning every platter at maximum.

The planner is deterministic end to end:

* extent heats are drawn from the fault layer's seeded hash
  (:func:`repro.faults.models.unit_draw`, subject ``extent``) through an
  exponential transform — heavy-tailed, reproducible, backend-blind;
* extents are packed hottest-first (ties by index) onto drives sized so
  a balanced all-top-speed layout would run at ``target_utilization``;
* each drive then drops to the lowest ladder level whose capacity
  (IDR-linear in RPM) still covers its assigned demand.

``migrated_extents`` counts extents whose drive differs from the
balanced baseline (extent ``i`` on drive ``i mod N``) — the data motion
the plan would cost.  Saved power is the windage + spindle + VCM heat
difference (:func:`repro.thermal.array.drive_heat_w`) between the
all-top baseline and the planned levels; it also directly reduces the
heat the coupled rack model must exhaust.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.dtm.multispeed import MultiSpeedProfile
from repro.errors import FleetError
from repro.faults.models import unit_draw

__all__ = [
    "TieringPolicy",
    "TieringPlan",
    "extent_heats",
    "plan_rack_tiering",
]


@dataclass(frozen=True)
class TieringPolicy:
    """Extent-tiering knobs for one fleet run.

    Attributes:
        extents: extents to place per rack (0 disables tiering).
        seed: root of the deterministic heat draws.
        target_utilization: fraction of a top-speed drive's capacity the
            balanced baseline layout would use; sizes per-drive
            capacity, so lower targets leave more headroom and demote
            fewer drives.
    """

    extents: int = 0
    seed: int = 0
    target_utilization: float = 0.7

    def __post_init__(self) -> None:
        if self.extents < 0:
            raise FleetError(f"extents cannot be negative, got {self.extents}")
        if not 0.0 < self.target_utilization <= 1.0:
            raise FleetError(
                f"target_utilization must be in (0, 1], "
                f"got {self.target_utilization}"
            )

    @property
    def enabled(self) -> bool:
        return self.extents > 0


@dataclass(frozen=True)
class TieringPlan:
    """One rack's extent placement and speed-level assignment.

    Attributes:
        extents: extents placed.
        drive_levels: assigned ladder level per drive, in (enclosure,
            slot) order.
        drive_demand: summed extent heat per drive, same order.
        migrated_extents: extents moved relative to the balanced
            baseline layout.
        baseline_power_w: total drive heat with every drive at the top
            rung (the un-tiered fleet).
        planned_power_w: total drive heat at the assigned levels.
    """

    extents: int
    drive_levels: Tuple[float, ...]
    drive_demand: Tuple[float, ...]
    migrated_extents: int
    baseline_power_w: float
    planned_power_w: float

    @property
    def saved_power_w(self) -> float:
        return self.baseline_power_w - self.planned_power_w

    @property
    def total_demand(self) -> float:
        return sum(self.drive_demand)


def extent_heats(count: int, seed: int) -> List[float]:
    """Deterministic heavy-tailed access heat per extent.

    An inverse-CDF exponential over the seeded unit hash: reproducible
    across processes and hosts (no global RNG), skewed enough that a
    minority of extents carries most of the demand.
    """
    if count < 0:
        raise FleetError(f"extent count cannot be negative, got {count}")
    heats = []
    for index in range(count):
        u = unit_draw(seed, "extent", index, "heat")
        heats.append(-math.log(1.0 - u))
    return heats


def plan_rack_tiering(
    drive_count: int,
    profile: MultiSpeedProfile,
    policy: TieringPolicy,
    diameter_in: float = 2.6,
    platter_count: int = 1,
    vcm_duty: float = 0.5,
) -> TieringPlan:
    """Pack one rack's extents hottest-first and demote cold drives.

    Args:
        drive_count: drives available in the rack.
        profile: the multi-speed ladder (must serve at lower levels).
        policy: extent count, seed, utilization target.
        diameter_in / platter_count / vcm_duty: drive geometry and
            activity, for the power accounting.
    """
    if drive_count < 1:
        raise FleetError(f"need at least one drive, got {drive_count}")
    if not profile.serves_at_lower_levels:
        raise FleetError(
            "tiering needs a ladder that serves at lower levels (DRPM)"
        )
    from repro.thermal.array import drive_heat_w

    heats = extent_heats(policy.extents, policy.seed)
    total = sum(heats)
    top = profile.top_rpm
    # Capacity of a top-speed drive: the demand a balanced layout would
    # put on it, divided by the utilization target.  Capacity at lower
    # levels scales IDR-linearly with RPM.
    capacity_top = (
        (total / drive_count) / policy.target_utilization
        if total > 0.0
        else 0.0
    )
    order = sorted(range(len(heats)), key=lambda i: (-heats[i], i))
    demand = [0.0] * drive_count
    assignment = [0] * len(heats)
    drive = 0
    for index in order:
        # First-fit in drive order: fill a drive to capacity, move on.
        # The last drive takes any overflow (every extent must land).
        while (
            drive < drive_count - 1
            and demand[drive] + heats[index] > capacity_top
        ):
            drive += 1
        demand[drive] += heats[index]
        assignment[index] = drive
    levels = []
    for d in range(drive_count):
        fitting = [
            level
            for level in profile.rpm_levels
            if capacity_top * (level / top) + 1e-12 >= demand[d]
        ]
        levels.append(fitting[0] if fitting else top)
    baseline = drive_heat_w(top, diameter_in, platter_count, vcm_duty=vcm_duty)
    planned = [
        drive_heat_w(level, diameter_in, platter_count, vcm_duty=vcm_duty)
        for level in levels
    ]
    migrated = sum(
        1
        for index, where in enumerate(assignment)
        if where != index % drive_count
    )
    return TieringPlan(
        extents=len(heats),
        drive_levels=tuple(levels),
        drive_demand=tuple(demand),
        migrated_extents=migrated,
        baseline_power_w=baseline * drive_count,
        planned_power_w=sum(planned),
    )
