"""Shared thermal environments: rack inlet coupling and cooling budgets.

Two coupling mechanisms, both energy balances over the cooling stream
(the same physics as :mod:`repro.thermal.array`):

* **Inside an enclosure** air flows over the drives in series; each
  drive raises the stream by ``Q / (rho * c_p * V)``, so downstream
  slots see a hotter local inlet.
* **Between enclosures in a rack** every enclosure draws from the cold
  aisle, but a fraction of the exhaust heat of the enclosures below
  recirculates into the supply of the ones above: enclosure ``k``'s
  inlet is the rack supply plus ``recirculation`` times the summed
  exhaust rises of enclosures ``0..k-1``.  Inlets are therefore
  non-decreasing along the stack — the monotonicity property the fleet
  property suite pins down.

Each drive's internal air temperature is its local inlet plus a
geometry/RPM/duty-dependent rise.  The drive thermal network is linear
in its boundary temperature, so the rise is ambient-independent; it is
computed once per distinct ``(diameter, platters, rpm)`` via the full
:class:`repro.thermal.model.DriveThermalModel` steady state and memoized
— what makes 1000-drive fleets (and the DTM coordinator's iterations)
cheap without leaving the calibrated model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.constants import AMBIENT_TEMPERATURE_C
from repro.errors import FleetError
from repro.fleet.topology import EnclosureSpec, RackSpec
from repro.thermal.array import airflow_temperature_rise_c, drive_heat_w
from repro.thermal.envelope import steady_air_temperature_c

__all__ = [
    "DriveThermal",
    "EnclosureProfile",
    "RackProfile",
    "drive_air_rise_c",
    "enclosure_inlets_c",
    "rack_profile",
]

#: Reference ambient the memoized rises are computed at.  Any value
#: works (the network is linear in ambient); pinning one keeps every
#: process's memo entries bit-identical.
_RISE_REFERENCE_C = AMBIENT_TEMPERATURE_C

#: Memoized (VCM-off rise, VCM-on rise) per drive geometry and speed.
_RISE_CACHE: Dict[Tuple[float, int, float], Tuple[float, float]] = {}


def drive_air_rise_c(
    diameter_in: float,
    platter_count: int,
    rpm: float,
    vcm_duty: float,
) -> float:
    """Internal-air rise of one drive above its local inlet, Celsius.

    Fractional VCM duty interpolates between the off/on steady states —
    exact, because the thermal network is linear in the VCM heat (the
    same interpolation :func:`repro.thermal.array.serial_array_profile`
    uses).
    """
    if not 0.0 <= vcm_duty <= 1.0:
        raise FleetError(f"vcm duty must be in [0, 1], got {vcm_duty}")
    key = (diameter_in, platter_count, rpm)
    # Pure memo of a deterministic model solve at a pinned reference
    # ambient: every process computes bit-identical values for a key, so
    # copies cannot diverge observably.
    # thermolint: disable=TL012
    rises = _RISE_CACHE.get(key)
    if rises is None:
        off = steady_air_temperature_c(
            diameter_in,
            rpm,
            platter_count=platter_count,
            ambient_c=_RISE_REFERENCE_C,
            vcm_active=False,
        )
        on = steady_air_temperature_c(
            diameter_in,
            rpm,
            platter_count=platter_count,
            ambient_c=_RISE_REFERENCE_C,
            vcm_active=True,
        )
        rises = (off - _RISE_REFERENCE_C, on - _RISE_REFERENCE_C)
        # thermolint: disable=TL012
        _RISE_CACHE[key] = rises
    rise_off, rise_on = rises
    return rise_off + vcm_duty * (rise_on - rise_off)


@dataclass(frozen=True)
class DriveThermal:
    """Thermal state of one drive slot in a coupled rack.

    Attributes:
        enclosure: index of the enclosure in the rack stack.
        slot: position along the enclosure's airflow (0 = inlet).
        rpm: spindle speed this state was computed at.
        heat_w: heat the drive dumps into the stream.
        local_inlet_c: air temperature entering this slot.
        internal_air_c: drive's steady internal air temperature.
    """

    enclosure: int
    slot: int
    rpm: float
    heat_w: float
    local_inlet_c: float
    internal_air_c: float


@dataclass(frozen=True)
class EnclosureProfile:
    """Coupled thermal state of one enclosure."""

    index: int
    inlet_c: float
    exhaust_c: float
    heat_w: float
    cooling_budget_w: float
    drives: Tuple[DriveThermal, ...]

    @property
    def over_budget(self) -> bool:
        return self.heat_w > self.cooling_budget_w + 1e-9


@dataclass(frozen=True)
class RackProfile:
    """Coupled thermal state of a whole rack."""

    rack: str
    inlet_c: float
    enclosures: Tuple[EnclosureProfile, ...]

    def iter_drives(self) -> Iterator[DriveThermal]:
        for enclosure in self.enclosures:
            for drive in enclosure.drives:
                yield drive

    @property
    def total_heat_w(self) -> float:
        return sum(e.heat_w for e in self.enclosures)

    @property
    def max_internal_c(self) -> float:
        return max(d.internal_air_c for d in self.iter_drives())


def _check_rpms(rack: RackSpec, rpms: Sequence[Sequence[float]]) -> None:
    if len(rpms) != len(rack.enclosures):
        raise FleetError(
            f"rack {rack.name!r} has {len(rack.enclosures)} enclosure(s), "
            f"got rpm rows for {len(rpms)}"
        )
    for index, enclosure in enumerate(rack.enclosures):
        if len(rpms[index]) != enclosure.drives:
            raise FleetError(
                f"enclosure {index} of rack {rack.name!r} has "
                f"{enclosure.drives} drive(s), got {len(rpms[index])} rpm(s)"
            )
        for rpm in rpms[index]:
            if rpm <= 0:
                raise FleetError(f"rpm must be positive, got {rpm}")


def _enclosure_profile(
    spec: EnclosureSpec,
    index: int,
    inlet_c: float,
    rpms: Sequence[float],
) -> EnclosureProfile:
    drives = []
    local = inlet_c
    total_heat = 0.0
    for slot, rpm in enumerate(rpms):
        heat = drive_heat_w(
            rpm, spec.diameter_in, spec.platter_count, vcm_duty=spec.vcm_duty
        )
        internal = local + drive_air_rise_c(
            spec.diameter_in, spec.platter_count, rpm, spec.vcm_duty
        )
        drives.append(
            DriveThermal(
                enclosure=index,
                slot=slot,
                rpm=rpm,
                heat_w=heat,
                local_inlet_c=local,
                internal_air_c=internal,
            )
        )
        total_heat += heat
        local += airflow_temperature_rise_c(heat, spec.airflow_m3_per_s)
    return EnclosureProfile(
        index=index,
        inlet_c=inlet_c,
        exhaust_c=local,
        heat_w=total_heat,
        cooling_budget_w=spec.cooling_budget_w,
        drives=tuple(drives),
    )


def enclosure_inlets_c(
    rack: RackSpec, exhaust_rises_c: Sequence[float]
) -> Tuple[float, ...]:
    """Inlet temperature of each enclosure given upstream exhaust rises.

    ``inlet[k] = supply + recirculation * sum(rise[0..k-1])`` — with a
    non-negative recirculation fraction and non-negative rises, inlets
    are non-decreasing along the stack.
    """
    inlets = []
    carried = 0.0
    for rise in exhaust_rises_c:
        inlets.append(rack.inlet_c + rack.recirculation * carried)
        carried += rise
    return tuple(inlets)


def rack_profile(
    rack: RackSpec,
    rpms: Optional[Sequence[Sequence[float]]] = None,
    default_rpm: float = 15000.0,
) -> RackProfile:
    """The coupled thermal profile of one rack at a speed assignment.

    Args:
        rack: the rack topology.
        rpms: per-enclosure, per-slot spindle speeds; None runs every
            drive at ``default_rpm``.
        default_rpm: uniform speed when ``rpms`` is None.
    """
    if rpms is None:
        rpms = [
            [default_rpm] * enclosure.drives for enclosure in rack.enclosures
        ]
    _check_rpms(rack, rpms)
    # First pass: each enclosure's exhaust rise depends only on its own
    # heat and airflow, not on its inlet (linearity again), so the
    # between-enclosure coupling resolves in one sweep.
    rises = []
    for index, enclosure in enumerate(rack.enclosures):
        heat = sum(
            drive_heat_w(
                rpm,
                enclosure.diameter_in,
                enclosure.platter_count,
                vcm_duty=enclosure.vcm_duty,
            )
            for rpm in rpms[index]
        )
        rises.append(airflow_temperature_rise_c(heat, enclosure.airflow_m3_per_s))
    inlets = enclosure_inlets_c(rack, rises)
    profiles = tuple(
        _enclosure_profile(enclosure, index, inlets[index], rpms[index])
        for index, enclosure in enumerate(rack.enclosures)
    )
    return RackProfile(rack=rack.name, inlet_c=rack.inlet_c, enclosures=profiles)
