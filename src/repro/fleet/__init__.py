"""Fleet-scale thermal simulation: racks, enclosures, coordinated DTM.

The paper stops at single drives and small RAID arrays; this package
scales the same physics to a datacenter fleet:

* :mod:`repro.fleet.topology` — frozen rack/enclosure/fleet specs with a
  canonical JSON config form (the fleet analogue of a sweep task).
* :mod:`repro.fleet.coupling` — shared thermal environments: serial
  airflow inside an enclosure, exhaust recirculation between enclosures
  in a rack, per-enclosure cooling budgets.
* :mod:`repro.fleet.dtm` — the fleet-level DTM coordinator: synchronous
  throttle rounds down a multi-speed ladder until every drive is inside
  the envelope and every enclosure inside its cooling budget, so
  aggregate service capacity degrades gracefully instead of
  cliff-dropping.
* :mod:`repro.fleet.tiering` — energy-aware extent tiering across the
  multi-speed drives of a rack (hot extents on fast spindles, cold
  extents on slow ones).
* :mod:`repro.fleet.reliability` — expected AFR and availability from
  the ``2^(dT/15)`` failure-acceleration law.
* :mod:`repro.fleet.sweep` — content-keyed rack tasks fanned out over
  the execution-backend seam with the same byte-identity contract as
  the workload sweeps.
"""

from repro.fleet.coupling import RackProfile, rack_profile
from repro.fleet.dtm import FleetDTMPolicy, coordinate_rack
from repro.fleet.reliability import ReliabilityParams, fleet_reliability
from repro.fleet.sweep import (
    FLEET_RESULTS_SCHEMA,
    FLEET_TASK_KIND,
    RackResult,
    RackTask,
    build_rack_tasks,
    fleet_results_document,
    fleet_results_json_bytes,
    fleet_summary,
    fleet_task_key,
    rack_result_from_payload,
    rack_result_to_payload,
    run_fleet_sweep,
)
from repro.fleet.tiering import TieringPolicy, plan_rack_tiering
from repro.fleet.topology import (
    EnclosureSpec,
    FleetSpec,
    RackSpec,
    fleet_config,
    fleet_from_config,
    uniform_fleet,
)

__all__ = [
    "EnclosureSpec",
    "RackSpec",
    "FleetSpec",
    "fleet_config",
    "fleet_from_config",
    "uniform_fleet",
    "RackProfile",
    "rack_profile",
    "FleetDTMPolicy",
    "coordinate_rack",
    "TieringPolicy",
    "plan_rack_tiering",
    "ReliabilityParams",
    "fleet_reliability",
    "FLEET_TASK_KIND",
    "FLEET_RESULTS_SCHEMA",
    "RackTask",
    "RackResult",
    "build_rack_tasks",
    "fleet_task_key",
    "rack_result_to_payload",
    "rack_result_from_payload",
    "fleet_results_document",
    "fleet_results_json_bytes",
    "fleet_summary",
    "run_fleet_sweep",
]
