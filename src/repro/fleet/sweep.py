"""Fleet sweeps: content-keyed rack tasks over the execution backends.

A fleet run fans out one task per rack — racks are thermally independent
of each other (they couple *internally* through shared air), so they are
the natural parallel unit, and a rack task is small enough to rebuild
its whole world from the frozen description alone.  The module mirrors
:mod:`repro.simulation.sweep` exactly:

* a frozen :class:`RackTask` carrying every input;
* a module-level pure worker (:func:`_run_rack_task`) so tasks pickle
  under any start method;
* a canonical content key (:func:`fleet_task_key`) that folds immaterial
  knobs to None, so fleet runs cache/resume/dedup through the result
  store and stay byte-identical across the serial, process and
  shared-store backends;
* an exact payload codec and a canonical results document
  (:func:`fleet_results_json_bytes`) — the byte-identity currency of the
  fleet differential suite.

Fault injection inside a rack task scopes each drive's injector with its
fleet identity (``rack/e<enclosure>/s<slot>``), so two drives with
identical configs draw *different* deterministic fault streams — the
regression `tests/test_fleet.py` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import FleetError
from repro.faults import FaultConfig
from repro.fleet.dtm import FleetDTMPolicy, coordinate_rack
from repro.fleet.reliability import ReliabilityParams, drive_afr, fleet_reliability
from repro.fleet.tiering import TieringPolicy, plan_rack_tiering
from repro.fleet.topology import FleetSpec, RackSpec, rack_config
from repro.units import rotation_time_ms

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.simulation.resilience import SweepRunReport
    from repro.simulation.sweep import BackendSpec
    from repro.store import ResultStore

__all__ = [
    "FLEET_TASK_KIND",
    "FLEET_RESULTS_SCHEMA",
    "RackTask",
    "DriveReport",
    "RackResult",
    "build_rack_tasks",
    "fleet_task_key",
    "rack_result_to_payload",
    "rack_result_from_payload",
    "fleet_summary",
    "fleet_results_document",
    "fleet_results_json_bytes",
    "run_fleet_sweep",
]

#: Task-family tag salted into every fleet-rack key.  Bump the suffix
#: when RackResult changes shape (the payload codec version).
FLEET_TASK_KIND = "fleet_rack/1"

#: Schema of the fleet results document written by ``--results-out`` and
#: compared byte-for-byte by the fleet differential suite.
FLEET_RESULTS_SCHEMA = "repro.fleet_results/1"


@dataclass(frozen=True)
class RackTask:
    """One rack's full simulation: coupling + DTM + tiering + AFR.

    ``accesses_per_drive`` and ``average_seek_ms`` only shape the fault
    replay, so without a ``fault_config`` they are immaterial (folded to
    None in the key).  ``tiering_*`` knobs are immaterial when
    ``tiering_extents`` is 0.
    """

    rack: RackSpec
    envelope_c: float
    rpm_levels: Tuple[float, ...]
    max_rounds: int = 64
    base_afr: float = 0.02
    reference_c: float = 40.0
    mttr_hours: float = 12.0
    tiering_extents: int = 0
    tiering_seed: int = 0
    tiering_target_utilization: float = 0.7
    accesses_per_drive: int = 256
    average_seek_ms: float = 3.6
    fault_config: Optional[FaultConfig] = None

    def label(self) -> str:
        """Human-readable task identity for manifests and logs."""
        return f"{self.rack.name}[{self.rack.drive_count}d]"


@dataclass(frozen=True)
class DriveReport:
    """Final state of one drive slot after coordination."""

    enclosure: int
    slot: int
    rpm: float
    local_inlet_c: float
    internal_air_c: float
    afr: float
    #: per-drive fault counters (:meth:`repro.faults.FaultStats.as_dict`)
    #: when the task injected faults; None otherwise.
    faults: Optional[dict] = field(default=None, repr=False)


@dataclass(frozen=True)
class RackResult:
    """Summary of one rack task, cheap to pickle back from a worker."""

    rack: str
    drive_count: int
    converged: bool
    rounds: int
    residual_breaches: int
    capacity_fraction: float
    total_heat_w: float
    max_internal_c: float
    mean_internal_c: float
    expected_annual_failures: float
    mean_afr: float
    worst_afr: float
    availability: float
    #: every throttle step as (round, enclosure, slot, from_rpm, to_rpm).
    throttle_events: Tuple[Tuple[int, int, int, float, float], ...]
    drives: Tuple[DriveReport, ...] = field(repr=False)
    #: tiering plan summary when the task enabled tiering; None otherwise.
    tiering: Optional[dict] = field(default=None, repr=False)


class _FaultTimebase:
    """Minimal mechanics facade for fault penalties.

    :meth:`repro.faults.DiskFaultInjector.media_access_fault` derives
    its latency penalties from three timing quantities of the disk —
    rotation period, settle time, average seek — which is all a fleet
    drive needs to expose (no layout, no event queue).
    """

    class _Seek:
        def __init__(self, average_ms: float) -> None:
            self._average_ms = average_ms

        def average_seek_ms(self) -> float:
            return self._average_ms

    def __init__(self, rpm: float, average_seek_ms: float) -> None:
        self.period_ms = rotation_time_ms(rpm)
        self.settle_ms = 0.1
        self.seek_model = self._Seek(average_seek_ms)


def _run_rack_task(task: RackTask) -> RackResult:
    """Simulate one rack from its frozen description alone (pure)."""
    policy = FleetDTMPolicy(
        rpm_levels=task.rpm_levels,
        envelope_c=task.envelope_c,
        max_rounds=task.max_rounds,
    )
    tiering_summary = None
    initial_rpms: Optional[List[List[float]]] = None
    if task.tiering_extents > 0:
        lead = task.rack.enclosures[0]
        plan = plan_rack_tiering(
            task.rack.drive_count,
            policy.profile(),
            TieringPolicy(
                extents=task.tiering_extents,
                seed=task.tiering_seed,
                target_utilization=task.tiering_target_utilization,
            ),
            diameter_in=lead.diameter_in,
            platter_count=lead.platter_count,
            vcm_duty=lead.vcm_duty,
        )
        # The flat hottest-first levels become the starting assignment;
        # the DTM coordinator may throttle further, never back up.
        initial_rpms = []
        cursor = 0
        for enclosure in task.rack.enclosures:
            initial_rpms.append(
                list(plan.drive_levels[cursor : cursor + enclosure.drives])
            )
            cursor += enclosure.drives
        tiering_summary = {
            "extents": plan.extents,
            "migrated_extents": plan.migrated_extents,
            "baseline_power_w": plan.baseline_power_w,
            "planned_power_w": plan.planned_power_w,
            "saved_power_w": plan.saved_power_w,
            "total_demand": plan.total_demand,
        }
    coord = coordinate_rack(task.rack, policy, initial_rpms=initial_rpms)
    drives_thermal = list(coord.profile.iter_drives())
    params = ReliabilityParams(
        base_afr=task.base_afr,
        reference_c=task.reference_c,
        mttr_hours=task.mttr_hours,
    )
    aggregate = fleet_reliability(
        [d.internal_air_c for d in drives_thermal], params
    )
    reports = []
    for drive in drives_thermal:
        faults = None
        if task.fault_config is not None and task.fault_config.injects_disk_faults:
            injector = task.fault_config.injector_for(
                "disk", scope=f"{task.rack.name}/e{drive.enclosure}/s{drive.slot}"
            )
            timebase = _FaultTimebase(drive.rpm, task.average_seek_ms)
            for _ in range(task.accesses_per_drive):
                injector.media_access_fault(timebase)  # type: ignore[arg-type]
            faults = injector.stats.as_dict()
        reports.append(
            DriveReport(
                enclosure=drive.enclosure,
                slot=drive.slot,
                rpm=drive.rpm,
                local_inlet_c=drive.local_inlet_c,
                internal_air_c=drive.internal_air_c,
                afr=drive_afr(drive.internal_air_c, params),
                faults=faults,
            )
        )
    internals = [d.internal_air_c for d in drives_thermal]
    return RackResult(
        rack=task.rack.name,
        drive_count=len(reports),
        converged=coord.converged,
        rounds=coord.rounds,
        residual_breaches=coord.residual_breaches,
        capacity_fraction=coord.capacity_fraction,
        total_heat_w=coord.profile.total_heat_w,
        max_internal_c=max(internals),
        mean_internal_c=sum(internals) / len(internals),
        expected_annual_failures=aggregate.expected_annual_failures,
        mean_afr=aggregate.mean_afr,
        worst_afr=aggregate.worst_afr,
        availability=aggregate.availability,
        throttle_events=tuple(
            (e.round, e.enclosure, e.slot, e.from_rpm, e.to_rpm)
            for e in coord.events
        ),
        drives=tuple(reports),
        tiering=tiering_summary,
    )


# ---------------------------------------------------------------------------
# Result-store integration: task keys and the result codec (the fleet
# keyed zone — every material RackTask field must enter the key, every
# RackResult field must round-trip the codec exactly).
# ---------------------------------------------------------------------------


def fleet_task_key(task: RackTask) -> str:
    """The canonical content key of one rack task.

    Immaterial knobs are normalized out: the tiering knobs shape nothing
    when ``tiering_extents`` is 0, and the fault-replay knobs shape
    nothing without a fault config — asking for the same rack with
    different unused knobs is the same task.
    """
    import dataclasses

    from repro.store import config_key

    fault = (
        dataclasses.asdict(task.fault_config)
        if task.fault_config is not None
        else None
    )
    tiered = task.tiering_extents > 0
    config = {
        "rack": rack_config(task.rack),
        "envelope_c": task.envelope_c,
        "rpm_levels": list(task.rpm_levels),
        "max_rounds": task.max_rounds,
        "base_afr": task.base_afr,
        "reference_c": task.reference_c,
        "mttr_hours": task.mttr_hours,
        "tiering_extents": task.tiering_extents,
        "tiering_seed": task.tiering_seed if tiered else None,
        "tiering_target_utilization": (
            task.tiering_target_utilization if tiered else None
        ),
        "accesses_per_drive": (
            task.accesses_per_drive if fault is not None else None
        ),
        "average_seek_ms": task.average_seek_ms if fault is not None else None,
        "fault_config": fault,
    }
    return config_key(FLEET_TASK_KIND, config)


def rack_result_to_payload(result: RackResult) -> Dict[str, object]:
    """Serialize one rack result into an exact strict-JSON payload."""
    from repro.store import encode_payload

    return {
        "rack": result.rack,
        "drive_count": result.drive_count,
        "converged": result.converged,
        "rounds": result.rounds,
        "residual_breaches": result.residual_breaches,
        "capacity_fraction": result.capacity_fraction,
        "total_heat_w": result.total_heat_w,
        "max_internal_c": result.max_internal_c,
        "mean_internal_c": result.mean_internal_c,
        "expected_annual_failures": result.expected_annual_failures,
        "mean_afr": result.mean_afr,
        "worst_afr": result.worst_afr,
        "availability": result.availability,
        "throttle_events": [list(event) for event in result.throttle_events],
        "drives": [
            {
                "enclosure": d.enclosure,
                "slot": d.slot,
                "rpm": d.rpm,
                "local_inlet_c": d.local_inlet_c,
                "internal_air_c": d.internal_air_c,
                "afr": d.afr,
                "faults": (
                    encode_payload(d.faults) if d.faults is not None else None
                ),
            }
            for d in result.drives
        ],
        "tiering": (
            encode_payload(result.tiering)
            if result.tiering is not None
            else None
        ),
    }


def rack_result_from_payload(payload: Dict[str, object]) -> RackResult:
    """Reconstruct a result indistinguishable from a computed one.

    Tuple-typed fields are rebuilt from JSON lists; numbers pass through
    uncoerced (JSON preserves int-vs-float exactly) so cached results
    serialize identically to computed ones.
    """
    from repro.store import decode_payload

    tiering = payload["tiering"]
    return RackResult(
        rack=payload["rack"],  # type: ignore[arg-type]
        drive_count=payload["drive_count"],  # type: ignore[arg-type]
        converged=payload["converged"],  # type: ignore[arg-type]
        rounds=payload["rounds"],  # type: ignore[arg-type]
        residual_breaches=payload["residual_breaches"],  # type: ignore[arg-type]
        capacity_fraction=payload["capacity_fraction"],  # type: ignore[arg-type]
        total_heat_w=payload["total_heat_w"],  # type: ignore[arg-type]
        max_internal_c=payload["max_internal_c"],  # type: ignore[arg-type]
        mean_internal_c=payload["mean_internal_c"],  # type: ignore[arg-type]
        expected_annual_failures=payload[
            "expected_annual_failures"
        ],  # type: ignore[assignment]
        mean_afr=payload["mean_afr"],  # type: ignore[arg-type]
        worst_afr=payload["worst_afr"],  # type: ignore[arg-type]
        availability=payload["availability"],  # type: ignore[arg-type]
        throttle_events=tuple(
            (r, e, s, f, t)
            for r, e, s, f, t in payload["throttle_events"]  # type: ignore[union-attr]
        ),
        drives=tuple(
            DriveReport(
                enclosure=d["enclosure"],
                slot=d["slot"],
                rpm=d["rpm"],
                local_inlet_c=d["local_inlet_c"],
                internal_air_c=d["internal_air_c"],
                afr=d["afr"],
                faults=(
                    decode_payload(d["faults"])
                    if d["faults"] is not None
                    else None
                ),
            )
            for d in payload["drives"]  # type: ignore[union-attr]
        ),
        tiering=decode_payload(tiering) if tiering is not None else None,
    )


def fleet_summary(
    results: Sequence[Optional[RackResult]],
) -> Optional[Dict[str, object]]:
    """Fleet-wide aggregates over the healthy rack results.

    None when no rack completed.  Availability and capacity are
    drive-weighted means; expected annual failures and heat are sums —
    all pure arithmetic over the rack payloads, so every backend (and a
    rebuild from cached entries) assembles identical bytes.
    """
    healthy = [r for r in results if r is not None]
    if not healthy:
        return None
    drives = sum(r.drive_count for r in healthy)
    return {
        "racks": len(healthy),
        "drives": drives,
        "converged": all(r.converged for r in healthy),
        "throttle_steps": sum(len(r.throttle_events) for r in healthy),
        "capacity_fraction": (
            sum(r.capacity_fraction * r.drive_count for r in healthy) / drives
        ),
        "total_heat_w": sum(r.total_heat_w for r in healthy),
        "max_internal_c": max(r.max_internal_c for r in healthy),
        "expected_annual_failures": sum(
            r.expected_annual_failures for r in healthy
        ),
        "availability": (
            sum(r.availability * r.drive_count for r in healthy) / drives
        ),
        "tiering_saved_power_w": sum(
            r.tiering["saved_power_w"] for r in healthy if r.tiering is not None
        ),
    }


def fleet_results_document(
    results: Sequence[Optional[RackResult]],
) -> Dict[str, object]:
    """The :data:`FLEET_RESULTS_SCHEMA` document for a (possibly holey)
    fleet sweep."""
    return {
        "schema": FLEET_RESULTS_SCHEMA,
        "results": [
            rack_result_to_payload(r) if r is not None else None
            for r in results
        ],
        "summary": fleet_summary(results),
    }


def fleet_results_json_bytes(
    results: Sequence[Optional[RackResult]],
) -> bytes:
    """Canonical serialized fleet results — the byte-identity currency."""
    from repro.store import stable_json

    return (stable_json(fleet_results_document(results)) + "\n").encode("utf-8")


def build_rack_tasks(
    fleet: FleetSpec,
    policy: Optional[FleetDTMPolicy] = None,
    reliability: Optional[ReliabilityParams] = None,
    tiering: Optional[TieringPolicy] = None,
    fault_config: Optional[FaultConfig] = None,
    accesses_per_drive: int = 256,
    average_seek_ms: float = 3.6,
) -> List[RackTask]:
    """One task per rack, in fleet order.

    Policy/reliability/tiering validation happens here, in the parent,
    before any fork (the frozen dataclasses validate in __init__).
    """
    if accesses_per_drive < 0:
        raise FleetError(
            f"accesses_per_drive cannot be negative, got {accesses_per_drive}"
        )
    policy = policy if policy is not None else FleetDTMPolicy(
        envelope_c=fleet.envelope_c
    )
    reliability = reliability if reliability is not None else ReliabilityParams()
    tiering = tiering if tiering is not None else TieringPolicy()
    return [
        RackTask(
            rack=rack,
            envelope_c=policy.envelope_c,
            rpm_levels=policy.rpm_levels,
            max_rounds=policy.max_rounds,
            base_afr=reliability.base_afr,
            reference_c=reliability.reference_c,
            mttr_hours=reliability.mttr_hours,
            tiering_extents=tiering.extents,
            tiering_seed=tiering.seed,
            tiering_target_utilization=tiering.target_utilization,
            accesses_per_drive=accesses_per_drive,
            average_seek_ms=average_seek_ms,
            fault_config=fault_config,
        )
        for rack in fleet.racks
    ]


def run_fleet_sweep(
    tasks: Sequence[RackTask],
    workers: Optional[int] = None,
    retries: int = 0,
    backoff_s: float = 0.0,
    timeout_s: Optional[float] = None,
    telemetry: Optional[object] = None,
    store: Optional["ResultStore"] = None,
    backend: "BackendSpec" = None,
) -> Tuple[List[Optional[RackResult]], "SweepRunReport"]:
    """Fan rack tasks out over whichever execution backend.

    With a store (or the ``shared-store`` backend, which materializes
    the default one), completed racks are served from / persisted to it
    — bit-identical either way, which is what makes fleet sweeps resume
    for free and agree across backends.

    Returns:
        (results with None holes for failed racks, the run report).
    """
    from repro.simulation.resilience import run_sweep_cached, run_sweep_resilient
    from repro.simulation.sweep import effective_store

    store = effective_store(store, backend)
    if store is not None:
        report = run_sweep_cached(
            tasks,
            _run_rack_task,
            store,
            fleet_task_key,
            rack_result_to_payload,
            rack_result_from_payload,
            kind=FLEET_TASK_KIND,
            workers=workers,
            retries=retries,
            backoff_s=backoff_s,
            timeout_s=timeout_s,
            telemetry=telemetry,
            backend=backend,
        )
    else:
        report = run_sweep_resilient(
            tasks,
            _run_rack_task,
            workers=workers,
            retries=retries,
            backoff_s=backoff_s,
            timeout_s=timeout_s,
            telemetry=telemetry,
            backend=backend,
        )
    return report.results(), report
