"""Expected AFR and availability of a fleet via the 2^(dT/15) law.

The paper's closing argument — every 15 C doubles the failure rate —
becomes actionable at fleet scale: given each drive's steady internal
temperature, a rated AFR at a reference temperature extrapolates to a
per-drive expected annualized failure rate

    ``AFR(T) = base_afr * 2^((T - reference) / 15)``

(:func:`repro.thermal.reliability.failure_acceleration`).  Treating
failures as a repairable Poisson process with mean time to repair
``MTTR``, a drive's steady-state availability is

    ``A = 1 / (1 + AFR * MTTR_h / 8760)``

and the fleet reports the sum of rates (expected annual failures — the
first-failure rate RAID arrays care about), the mean availability, and
the hottest drive's AFR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import FleetError
from repro.thermal.reliability import failure_acceleration

__all__ = [
    "HOURS_PER_YEAR",
    "ReliabilityParams",
    "FleetReliability",
    "drive_afr",
    "drive_availability",
    "fleet_reliability",
]

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class ReliabilityParams:
    """Rated reliability of the fleet's drives.

    Attributes:
        base_afr: annualized failure rate at the reference temperature
            (0.02 = 2 % of drives per year, a typical datasheet figure).
        reference_c: internal air temperature the rating assumes.
        mttr_hours: mean time to repair/replace one failed drive.
    """

    base_afr: float = 0.02
    reference_c: float = 40.0
    mttr_hours: float = 12.0

    def __post_init__(self) -> None:
        if self.base_afr <= 0.0:
            raise FleetError(f"base_afr must be positive, got {self.base_afr}")
        if self.mttr_hours < 0.0:
            raise FleetError(
                f"mttr_hours cannot be negative, got {self.mttr_hours}"
            )


@dataclass(frozen=True)
class FleetReliability:
    """Aggregate reliability of one fleet (or one rack).

    Attributes:
        drive_count: drives aggregated.
        expected_annual_failures: sum of per-drive AFRs — the expected
            number of failures per year across the group.
        mean_afr / worst_afr: average and hottest-drive rates.
        availability: mean per-drive steady-state availability (the
            expected fraction of the group online at any instant).
    """

    drive_count: int
    expected_annual_failures: float
    mean_afr: float
    worst_afr: float
    availability: float


def drive_afr(internal_air_c: float, params: ReliabilityParams) -> float:
    """Expected annualized failure rate of one drive at a temperature."""
    return params.base_afr * failure_acceleration(
        internal_air_c, reference_c=params.reference_c
    )


def drive_availability(afr: float, mttr_hours: float) -> float:
    """Steady-state availability of a repairable drive."""
    if afr < 0.0:
        raise FleetError(f"afr cannot be negative, got {afr}")
    return 1.0 / (1.0 + afr * mttr_hours / HOURS_PER_YEAR)


def fleet_reliability(
    internal_air_c: Sequence[float], params: ReliabilityParams
) -> FleetReliability:
    """Aggregate AFR/availability over a group of drive temperatures."""
    if not internal_air_c:
        raise FleetError("need at least one drive temperature")
    rates = [drive_afr(t, params) for t in internal_air_c]
    availabilities = [drive_availability(r, params.mttr_hours) for r in rates]
    return FleetReliability(
        drive_count=len(rates),
        expected_annual_failures=sum(rates),
        mean_afr=sum(rates) / len(rates),
        worst_afr=max(rates),
        availability=sum(availabilities) / len(availabilities),
    )
