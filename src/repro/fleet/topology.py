"""Fleet topology: racks of enclosures of drive slots.

A fleet is described bottom-up: an :class:`EnclosureSpec` is a box of
identical drives cooled by one serial airflow path with a finite cooling
budget; a :class:`RackSpec` stacks enclosures that share a cold-aisle
supply and partially recirculate each other's exhaust; a
:class:`FleetSpec` is a set of named racks under one thermal envelope.

Everything is a frozen dataclass — hashable, picklable, usable as a
sweep-task field — and round-trips through a canonical JSON config form
(:func:`fleet_config` / :func:`fleet_from_config`) so topologies can be
content-keyed, stored in golden fixtures and posted to the job service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import FleetError
from repro.units import KELVIN_OFFSET

__all__ = [
    "EnclosureSpec",
    "RackSpec",
    "FleetSpec",
    "enclosure_config",
    "rack_config",
    "fleet_config",
    "enclosure_from_config",
    "rack_from_config",
    "fleet_from_config",
    "uniform_fleet",
]


@dataclass(frozen=True)
class EnclosureSpec:
    """One enclosure: identical drives along a serial airflow path.

    Attributes:
        drives: drive slots in airflow order (slot 0 sits at the inlet).
        airflow_m3_per_s: volumetric cooling airflow through the box.
        cooling_budget_w: heat the enclosure's cooling can remove; the
            fleet DTM coordinator throttles the whole enclosure when its
            drives dump more than this.
        diameter_in: platter diameter of every drive in the box.
        platter_count: platters per drive.
        vcm_duty: assumed seek activity (0 = idle, 1 = saturated VCM),
            entering both the dumped heat and each drive's internal
            temperature.
    """

    drives: int
    airflow_m3_per_s: float = 0.018
    cooling_budget_w: float = 300.0
    diameter_in: float = 2.6
    platter_count: int = 1
    vcm_duty: float = 0.5

    def __post_init__(self) -> None:
        if self.drives < 1:
            raise FleetError(f"enclosure needs at least one drive, got {self.drives}")
        if self.airflow_m3_per_s <= 0.0:
            raise FleetError(
                f"enclosure airflow must be positive, got {self.airflow_m3_per_s}"
            )
        if self.cooling_budget_w < 0.0:
            raise FleetError(
                f"cooling budget cannot be negative, got {self.cooling_budget_w}"
            )
        if self.diameter_in <= 0.0:
            raise FleetError(f"diameter must be positive, got {self.diameter_in}")
        if self.platter_count < 1:
            raise FleetError(
                f"platter count must be >= 1, got {self.platter_count}"
            )
        if not 0.0 <= self.vcm_duty <= 1.0:
            raise FleetError(f"vcm duty must be in [0, 1], got {self.vcm_duty}")


@dataclass(frozen=True)
class RackSpec:
    """One rack: a stack of enclosures sharing a cold-aisle supply.

    Air enters every enclosure from the cold aisle at ``inlet_c``, but a
    fraction ``recirculation`` of the exhaust heat of the enclosures
    below preheats the supply of the ones above — the classic
    top-of-rack hot spot.  ``recirculation=0`` models perfect aisle
    containment; ``1`` models a fully serial stack.

    Attributes:
        name: unique rack identity; enters fault-injection subjects, so
            it must not contain ``/`` (the scope separator).
        enclosures: the stack, index 0 closest to the supply.
        inlet_c: cold-aisle supply temperature.
        recirculation: fraction of upstream exhaust temperature rise
            carried into downstream enclosure inlets, in [0, 1].
    """

    name: str
    enclosures: Tuple[EnclosureSpec, ...]
    inlet_c: float = AMBIENT_TEMPERATURE_C
    recirculation: float = 0.2

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("rack name cannot be empty")
        if "/" in self.name:
            raise FleetError(
                f"rack name cannot contain '/' (fault-scope separator): "
                f"{self.name!r}"
            )
        if not self.enclosures:
            raise FleetError(f"rack {self.name!r} needs at least one enclosure")
        if not 0.0 <= self.recirculation <= 1.0:
            raise FleetError(
                f"recirculation must be in [0, 1], got {self.recirculation}"
            )

    @property
    def drive_count(self) -> int:
        return sum(enclosure.drives for enclosure in self.enclosures)

    def slots(self) -> Iterator[Tuple[int, int]]:
        """Every (enclosure index, slot index) pair in airflow order."""
        for index, enclosure in enumerate(self.enclosures):
            for slot in range(enclosure.drives):
                yield index, slot


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet: uniquely named racks under one thermal envelope."""

    racks: Tuple[RackSpec, ...]
    envelope_c: float = THERMAL_ENVELOPE_C

    def __post_init__(self) -> None:
        if not self.racks:
            raise FleetError("fleet needs at least one rack")
        names = [rack.name for rack in self.racks]
        if len(set(names)) != len(names):
            raise FleetError(f"rack names must be unique, got {names}")
        if self.envelope_c <= -KELVIN_OFFSET:
            raise FleetError(f"envelope below absolute zero: {self.envelope_c}")

    @property
    def drive_count(self) -> int:
        return sum(rack.drive_count for rack in self.racks)


# ---------------------------------------------------------------------------
# Canonical config form — the shape that enters content keys and fixtures.
# ---------------------------------------------------------------------------


def enclosure_config(enclosure: EnclosureSpec) -> Dict[str, Any]:
    """Canonical JSON form of one enclosure."""
    return {
        "drives": enclosure.drives,
        "airflow_m3_per_s": enclosure.airflow_m3_per_s,
        "cooling_budget_w": enclosure.cooling_budget_w,
        "diameter_in": enclosure.diameter_in,
        "platter_count": enclosure.platter_count,
        "vcm_duty": enclosure.vcm_duty,
    }


def rack_config(rack: RackSpec) -> Dict[str, Any]:
    """Canonical JSON form of one rack."""
    return {
        "name": rack.name,
        "enclosures": [enclosure_config(e) for e in rack.enclosures],
        "inlet_c": rack.inlet_c,
        "recirculation": rack.recirculation,
    }


def fleet_config(fleet: FleetSpec) -> Dict[str, Any]:
    """Canonical JSON form of a whole fleet."""
    return {
        "racks": [rack_config(r) for r in fleet.racks],
        "envelope_c": fleet.envelope_c,
    }


def _take(mapping: Mapping[str, Any], what: str, allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise FleetError(
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(allowed)})"
        )


def enclosure_from_config(config: Mapping[str, Any]) -> EnclosureSpec:
    """Parse one enclosure config (strict: unknown fields are errors)."""
    if not isinstance(config, Mapping):
        raise FleetError("enclosure config must be a mapping")
    _take(
        config,
        "enclosure",
        (
            "drives",
            "airflow_m3_per_s",
            "cooling_budget_w",
            "diameter_in",
            "platter_count",
            "vcm_duty",
        ),
    )
    if "drives" not in config:
        raise FleetError("enclosure config needs a 'drives' count")
    return EnclosureSpec(
        drives=int(config["drives"]),
        airflow_m3_per_s=float(config.get("airflow_m3_per_s", 0.018)),
        cooling_budget_w=float(config.get("cooling_budget_w", 300.0)),
        diameter_in=float(config.get("diameter_in", 2.6)),
        platter_count=int(config.get("platter_count", 1)),
        vcm_duty=float(config.get("vcm_duty", 0.5)),
    )


def rack_from_config(config: Mapping[str, Any]) -> RackSpec:
    """Parse one rack config (strict: unknown fields are errors)."""
    if not isinstance(config, Mapping):
        raise FleetError("rack config must be a mapping")
    _take(config, "rack", ("name", "enclosures", "inlet_c", "recirculation"))
    if "name" not in config or "enclosures" not in config:
        raise FleetError("rack config needs 'name' and 'enclosures'")
    return RackSpec(
        name=str(config["name"]),
        enclosures=tuple(
            enclosure_from_config(e) for e in config["enclosures"]
        ),
        inlet_c=float(config.get("inlet_c", AMBIENT_TEMPERATURE_C)),
        recirculation=float(config.get("recirculation", 0.2)),
    )


def fleet_from_config(config: Mapping[str, Any]) -> FleetSpec:
    """Parse a fleet config (strict: unknown fields are errors)."""
    if not isinstance(config, Mapping):
        raise FleetError("fleet config must be a mapping")
    _take(config, "fleet", ("racks", "envelope_c"))
    if "racks" not in config:
        raise FleetError("fleet config needs a 'racks' list")
    return FleetSpec(
        racks=tuple(rack_from_config(r) for r in config["racks"]),
        envelope_c=float(config.get("envelope_c", THERMAL_ENVELOPE_C)),
    )


def uniform_fleet(
    racks: int = 2,
    enclosures_per_rack: int = 4,
    drives_per_enclosure: int = 3,
    airflow_m3_per_s: float = 0.018,
    cooling_budget_w: float = 300.0,
    diameter_in: float = 2.6,
    platter_count: int = 1,
    vcm_duty: float = 0.5,
    inlet_c: float = AMBIENT_TEMPERATURE_C,
    recirculation: float = 0.2,
    envelope_c: float = THERMAL_ENVELOPE_C,
) -> FleetSpec:
    """A homogeneous fleet — the CLI's and the job service's topology.

    Racks are named ``rack00``, ``rack01``, ... so two fleets of the
    same shape are the same fleet (and deduplicate in the store).
    """
    if racks < 1:
        raise FleetError(f"need at least one rack, got {racks}")
    enclosure = EnclosureSpec(
        drives=drives_per_enclosure,
        airflow_m3_per_s=airflow_m3_per_s,
        cooling_budget_w=cooling_budget_w,
        diameter_in=diameter_in,
        platter_count=platter_count,
        vcm_duty=vcm_duty,
    )
    return FleetSpec(
        racks=tuple(
            RackSpec(
                name=f"rack{index:02d}",
                enclosures=(enclosure,) * enclosures_per_rack,
                inlet_c=inlet_c,
                recirculation=recirculation,
            )
            for index in range(racks)
        ),
        envelope_c=envelope_c,
    )
