"""Fleet-level DTM: coordinated throttling over a multi-speed ladder.

The single-drive DTM of :mod:`repro.dtm` reacts to one drive's
temperature; at fleet scale the drives are thermally *coupled* — one
drive's exhaust is another's inlet — so throttling must be coordinated.
The coordinator runs synchronous rounds:

1. Solve the rack's coupled profile at the current speed assignment.
2. Collect the breach set: every drive above the envelope, plus every
   drive of an enclosure over its cooling budget.
3. Step each breached drive down one rung of its multi-speed ladder.
4. Repeat until the breach set is empty or nothing can step further.

Because the breach set is a pure function of the assignment and *every*
member steps each round, the outcome is independent of the order drives
are enumerated in — the throttle-order invariance the property suite
asserts (``order`` exists only to demonstrate it).  Stepping down one
rung at a time is what makes aggregate capacity degrade gracefully:
capacity is lost in ladder-sized increments, never by cliff-dropping a
whole enclosure to the floor.

Service capacity is modeled as proportional to spindle speed (the
paper's IDR-linear scaling): a rack's capacity fraction is the sum of
assigned speeds over the sum of top speeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm.multispeed import MultiSpeedProfile
from repro.errors import FleetError
from repro.fleet.coupling import RackProfile, rack_profile
from repro.fleet.topology import RackSpec

__all__ = [
    "FleetDTMPolicy",
    "ThrottleEvent",
    "RackCoordination",
    "coordinate_rack",
]

#: Tolerance on envelope comparisons, matching
#: :meth:`repro.thermal.array.ArrayPosition.within_envelope`.
_ENVELOPE_TOL_C = 1e-9


@dataclass(frozen=True)
class FleetDTMPolicy:
    """Fleet throttling policy: the ladder and the constraint set.

    Attributes:
        rpm_levels: the multi-speed ladder every drive can sit on,
            strictly increasing (a DRPM-style profile; drives serve at
            every level).  Drives start at the top rung.
        envelope_c: maximum allowed internal air temperature.
        max_rounds: hard cap on throttle rounds (each round steps every
            breached drive once, so ``len(rpm_levels) - 1`` rounds
            always suffice; the cap guards against modeling mistakes).
    """

    rpm_levels: Tuple[float, ...] = (9600.0, 12000.0, 15000.0)
    envelope_c: float = THERMAL_ENVELOPE_C
    max_rounds: int = 64

    def __post_init__(self) -> None:
        # MultiSpeedProfile owns ladder validation (>= 2 levels,
        # positive, strictly increasing).
        self.profile()
        if self.max_rounds < 1:
            raise FleetError(f"max_rounds must be >= 1, got {self.max_rounds}")

    def profile(self) -> MultiSpeedProfile:
        """The ladder as the DTM layer's multi-speed profile."""
        return MultiSpeedProfile(
            rpm_levels=self.rpm_levels, serves_at_lower_levels=True
        )


@dataclass(frozen=True)
class ThrottleEvent:
    """One drive stepping down one rung in one round."""

    round: int
    enclosure: int
    slot: int
    from_rpm: float
    to_rpm: float


@dataclass(frozen=True)
class RackCoordination:
    """Outcome of coordinating one rack.

    Attributes:
        profile: the coupled thermal profile at the final assignment.
        rpms: the final per-enclosure, per-slot speed assignment.
        events: every throttle step, in (round, enclosure, slot) order.
        rounds: throttle rounds executed.
        converged: True when every drive ended inside the envelope and
            every enclosure inside its cooling budget.
        residual_breaches: drives still breaching after the ladder was
            exhausted (0 when converged).
        ladder_top: the policy's top rung, the capacity baseline.
    """

    profile: RackProfile
    rpms: Tuple[Tuple[float, ...], ...]
    events: Tuple[ThrottleEvent, ...]
    rounds: int
    converged: bool
    residual_breaches: int
    ladder_top: float

    @property
    def capacity_fraction(self) -> float:
        """Aggregate service capacity relative to every drive at the top
        rung (IDR scales linearly with spindle speed)."""
        assigned = sum(d.rpm for d in self.profile.iter_drives())
        count = sum(1 for _ in self.profile.iter_drives())
        return assigned / (self.ladder_top * count)

    @property
    def throttle_steps(self) -> int:
        return len(self.events)


def _breach_set(
    profile: RackProfile, envelope_c: float
) -> Set[Tuple[int, int]]:
    """Drives over the envelope, plus all drives of over-budget
    enclosures — a pure function of the coupled profile."""
    breached: Set[Tuple[int, int]] = set()
    for enclosure in profile.enclosures:
        if enclosure.over_budget:
            for drive in enclosure.drives:
                breached.add((drive.enclosure, drive.slot))
        for drive in enclosure.drives:
            if drive.internal_air_c > envelope_c + _ENVELOPE_TOL_C:
                breached.add((drive.enclosure, drive.slot))
    return breached


def coordinate_rack(
    rack: RackSpec,
    policy: FleetDTMPolicy,
    initial_rpms: Optional[Sequence[Sequence[float]]] = None,
    order: str = "sorted",
) -> RackCoordination:
    """Throttle a rack's drives until its thermal constraints hold.

    Args:
        rack: the rack topology.
        policy: ladder and constraints.
        initial_rpms: optional starting assignment (e.g. a tiering
            plan's levels); every value must be a ladder level.  None
            starts every drive at the top rung.
        order: enumeration order of the breach set when stepping —
            ``sorted`` or ``reversed``.  The outcome is identical either
            way (every breached drive steps every round); the knob
            exists so the property suite can prove it.
    """
    if order not in ("sorted", "reversed"):
        raise FleetError(f"order must be 'sorted' or 'reversed', got {order!r}")
    profile = policy.profile()
    levels = profile.rpm_levels
    if initial_rpms is None:
        rpms: List[List[float]] = [
            [profile.top_rpm] * enclosure.drives
            for enclosure in rack.enclosures
        ]
    else:
        rpms = [list(row) for row in initial_rpms]
        for row in rpms:
            for rpm in row:
                if rpm not in levels:
                    raise FleetError(
                        f"initial rpm {rpm} is not a ladder level {levels}"
                    )
    events: List[ThrottleEvent] = []
    rounds = 0
    state = rack_profile(rack, rpms)
    for round_index in range(policy.max_rounds):
        breached = _breach_set(state, policy.envelope_c)
        if not breached:
            break
        droppable = [
            key for key in breached if rpms[key[0]][key[1]] > profile.bottom_rpm
        ]
        if not droppable:
            break  # ladder exhausted; residual breaches reported below
        rounds = round_index + 1
        ordered = sorted(droppable, reverse=(order == "reversed"))
        for enclosure_index, slot in ordered:
            current = rpms[enclosure_index][slot]
            below = [level for level in levels if level < current]
            next_rpm = below[-1]
            rpms[enclosure_index][slot] = next_rpm
            events.append(
                ThrottleEvent(
                    round=round_index,
                    enclosure=enclosure_index,
                    slot=slot,
                    from_rpm=current,
                    to_rpm=next_rpm,
                )
            )
        state = rack_profile(rack, rpms)
    residual = len(_breach_set(state, policy.envelope_c))
    # Events are appended in enumeration order; canonicalize to
    # (round, enclosure, slot) so `order` cannot leak into the output.
    events.sort(key=lambda e: (e.round, e.enclosure, e.slot))
    return RackCoordination(
        profile=state,
        rpms=tuple(tuple(row) for row in rpms),
        events=tuple(events),
        rounds=rounds,
        converged=residual == 0,
        residual_breaches=residual,
        ladder_top=profile.top_rpm,
    )
