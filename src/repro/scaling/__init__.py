"""Technology trends and the thermally constrained roadmap."""

from repro.scaling.cooling import (
    PAPER_COOLING_DELTAS,
    CoolingScenario,
    cooling_study,
    roadmap_extension_years,
)
from repro.scaling.formfactor import (
    FormFactorComparison,
    extra_cooling_needed_c,
    formfactor_study,
)
from repro.scaling.roadmap import (
    REFERENCE_RPM,
    RequiredRpmCell,
    RoadmapPoint,
    YearDesign,
    capacity_series,
    cooling_budget_ambient_c,
    first_shortfall_year,
    idr_series,
    plan_roadmap,
    required_rpm_table,
    thermal_roadmap,
)
from repro.scaling.trends import PAPER_TRENDS, TechnologyTrends

__all__ = [
    "PAPER_TRENDS",
    "TechnologyTrends",
    "REFERENCE_RPM",
    "RequiredRpmCell",
    "RoadmapPoint",
    "YearDesign",
    "required_rpm_table",
    "thermal_roadmap",
    "plan_roadmap",
    "cooling_budget_ambient_c",
    "first_shortfall_year",
    "idr_series",
    "capacity_series",
    "CoolingScenario",
    "PAPER_COOLING_DELTAS",
    "cooling_study",
    "roadmap_extension_years",
    "FormFactorComparison",
    "formfactor_study",
    "extra_cooling_needed_c",
]
