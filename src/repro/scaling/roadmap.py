"""Thermally constrained disk-drive roadmap (paper §4).

Two complementary views:

* :func:`required_rpm_table` — Table 3: for each year and platter size, the
  RPM needed to stay on the 40% IDR growth curve, and the steady internal
  temperature that RPM would produce (ignoring the envelope).
* :func:`thermal_roadmap` — Figure 2: for each year, size and platter
  count, the *maximum* IDR attainable while remaining inside the thermal
  envelope, and the capacity of that design.

Multi-platter configurations receive a cooling budget (a lower effective
ambient) chosen so they, too, start the roadmap exactly at the envelope —
mirroring the paper's "different external cooling budgets for each of the
three platter counts".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.capacity.model import CapacityModel
from repro.capacity.zones import ZonedSurface
from repro.constants import (
    AMBIENT_TEMPERATURE_C,
    ROADMAP_FIRST_YEAR,
    ROADMAP_LAST_YEAR,
    ROADMAP_PLATTER_COUNTS,
    ROADMAP_PLATTER_SIZES_IN,
    ROADMAP_ZONES,
    THERMAL_ENVELOPE_C,
)
from repro.errors import RoadmapError
from repro.geometry.enclosure import FORM_FACTOR_35, Enclosure
from repro.geometry.platter import Platter
from repro.performance.idr import idr_mb_per_s, required_rpm_for_idr
from repro.scaling.trends import PAPER_TRENDS, TechnologyTrends
from repro.thermal.envelope import max_rpm_within_envelope, steady_air_temperature_c
from repro.thermal.model import ThermalCalibration

#: Reference spindle speed for the "IDR from density growth alone" column
#: of Table 3 (the state-of-the-art server RPM at the roadmap's start).
REFERENCE_RPM = 15000.0


def _surface(
    diameter_in: float, trends: TechnologyTrends, year: int, zone_count: int
) -> ZonedSurface:
    return ZonedSurface(
        platter=Platter(diameter_in=diameter_in),
        technology=trends.technology(year),
        zone_count=zone_count,
    )


# ---------------------------------------------------------------------------
# Table 3: required RPM and its thermal consequence
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequiredRpmCell:
    """One cell of Table 3.

    Attributes:
        year: roadmap year.
        diameter_in: platter size.
        target_idr_mb_s: the 40%-CGR IDR requirement for the year.
        idr_density_mb_s: IDR from density growth alone at the reference RPM.
        required_rpm: RPM needed to reach the target.
        steady_temp_c: steady internal-air temperature at that RPM
            (VCM on), ignoring the envelope.
        within_envelope: whether that temperature respects the envelope.
    """

    year: int
    diameter_in: float
    target_idr_mb_s: float
    idr_density_mb_s: float
    required_rpm: float
    steady_temp_c: float
    within_envelope: bool


def required_rpm_table(
    trends: TechnologyTrends = PAPER_TRENDS,
    years: Sequence[int] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1)),
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    platter_count: int = 1,
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    enclosure: Enclosure = FORM_FACTOR_35,
    calibration: Optional[ThermalCalibration] = None,
) -> List[RequiredRpmCell]:
    """Reproduce Table 3: the thermal profile of meeting the 40% IDR CGR.

    Returns one cell per (year, size), ordered by year then by the order of
    ``sizes``.
    """
    cells: List[RequiredRpmCell] = []
    for year in years:
        target = trends.target_idr_mb_s(year)
        for diameter in sizes:
            surface = _surface(diameter, trends, year, zone_count)
            ntz0 = surface.sectors_per_track_zone0
            idr_density = idr_mb_per_s(REFERENCE_RPM, ntz0)
            rpm = required_rpm_for_idr(target, ntz0)
            temp = steady_air_temperature_c(
                diameter,
                rpm,
                platter_count=platter_count,
                ambient_c=ambient_c,
                vcm_active=True,
                enclosure=enclosure,
                calibration=calibration,
            )
            cells.append(
                RequiredRpmCell(
                    year=year,
                    diameter_in=diameter,
                    target_idr_mb_s=target,
                    idr_density_mb_s=idr_density,
                    required_rpm=rpm,
                    steady_temp_c=temp,
                    within_envelope=temp <= envelope_c,
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Cooling budgets for multi-platter configurations
# ---------------------------------------------------------------------------


def cooling_budget_ambient_c(
    platter_count: int,
    trends: TechnologyTrends = PAPER_TRENDS,
    anchor_year: int = ROADMAP_FIRST_YEAR,
    anchor_diameter_in: float = 2.6,
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    enclosure: Enclosure = FORM_FACTOR_35,
    calibration: Optional[ThermalCalibration] = None,
) -> float:
    """Effective ambient for a platter count so the roadmap starts on the
    envelope.

    The paper gives 2- and 4-platter designs extra external cooling so the
    anchor configuration (2.6-inch at its 2002 required RPM) sits exactly at
    the envelope despite the extra windage.  The network is linear in the
    ambient with unit gain, so the budget is a single subtraction.
    """
    if platter_count < 1:
        raise RoadmapError(f"platter count must be >= 1, got {platter_count}")
    surface = _surface(anchor_diameter_in, trends, anchor_year, zone_count)
    anchor_rpm = required_rpm_for_idr(
        trends.target_idr_mb_s(anchor_year), surface.sectors_per_track_zone0
    )
    at_paper_ambient = steady_air_temperature_c(
        anchor_diameter_in,
        anchor_rpm,
        platter_count=platter_count,
        ambient_c=AMBIENT_TEMPERATURE_C,
        vcm_active=True,
        enclosure=enclosure,
        calibration=calibration,
    )
    return AMBIENT_TEMPERATURE_C - (at_paper_ambient - envelope_c)


# ---------------------------------------------------------------------------
# Figure 2: attainable IDR / capacity inside the envelope
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RoadmapPoint:
    """One point of the Figure 2 roadmap.

    Attributes:
        year: roadmap year.
        diameter_in: platter size.
        platter_count: platters in the stack.
        max_rpm: highest RPM inside the thermal envelope.
        max_idr_mb_s: IDR at that RPM with the year's densities.
        capacity_gb: usable capacity of the design, in the paper's (binary)
            GB convention.
        target_idr_mb_s: the 40%-CGR requirement for the year.
        meets_target: whether the attainable IDR reaches the target.
    """

    year: int
    diameter_in: float
    platter_count: int
    max_rpm: float
    max_idr_mb_s: float
    capacity_gb: float
    target_idr_mb_s: float

    @property
    def meets_target(self) -> bool:
        return self.max_idr_mb_s >= self.target_idr_mb_s


def thermal_roadmap(
    trends: TechnologyTrends = PAPER_TRENDS,
    years: Sequence[int] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1)),
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    platter_count: int = 1,
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: Optional[float] = None,
    vcm_active: bool = True,
    enclosure: Enclosure = FORM_FACTOR_35,
    calibration: Optional[ThermalCalibration] = None,
) -> List[RoadmapPoint]:
    """Reproduce one panel of Figure 2 (IDR and capacity roadmaps).

    Args:
        ambient_c: effective ambient; by default the per-platter-count
            cooling budget from :func:`cooling_budget_ambient_c`.
        vcm_active: True for envelope-design (worst case, VCM always on);
            False exposes the §5.2 thermal-slack variant of the roadmap.

    Returns one point per (year, size).
    """
    if ambient_c is None:
        ambient_c = cooling_budget_ambient_c(
            platter_count,
            trends=trends,
            zone_count=zone_count,
            envelope_c=envelope_c,
            enclosure=enclosure,
            calibration=calibration,
        )

    @lru_cache(maxsize=None)
    def max_rpm(diameter: float) -> float:
        from repro.errors import EnvelopeError

        try:
            return max_rpm_within_envelope(
                diameter,
                platter_count=platter_count,
                envelope_c=envelope_c,
                ambient_c=ambient_c,
                vcm_active=vcm_active,
                enclosure=enclosure,
                calibration=calibration,
            )
        except EnvelopeError:
            # The design exceeds the envelope at any server-class RPM (e.g.
            # a 2.6-inch platter in the 2.5-inch enclosure at baseline
            # cooling, §4.2.2): report an infeasible point rather than
            # aborting the whole roadmap.
            return 0.0

    points: List[RoadmapPoint] = []
    for year in years:
        target = trends.target_idr_mb_s(year)
        for diameter in sizes:
            surface = _surface(diameter, trends, year, zone_count)
            rpm = max_rpm(diameter)
            idr = (
                idr_mb_per_s(rpm, surface.sectors_per_track_zone0) if rpm > 0 else 0.0
            )
            capacity = CapacityModel(
                platter=Platter(diameter_in=diameter),
                technology=trends.technology(year),
                platter_count=platter_count,
                zone_count=zone_count,
            ).usable_capacity_gib()
            points.append(
                RoadmapPoint(
                    year=year,
                    diameter_in=diameter,
                    platter_count=platter_count,
                    max_rpm=rpm,
                    max_idr_mb_s=idr,
                    capacity_gb=capacity,
                    target_idr_mb_s=target,
                )
            )
    return points


# ---------------------------------------------------------------------------
# The 4-step design-selection algorithm of §4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class YearDesign:
    """The design chosen for one roadmap year.

    Attributes:
        year: roadmap year.
        point: the chosen (size, count) roadmap point.
        achieved_idr_mb_s: IDR the chosen design delivers (capped at the
            target when the design exceeds it, as manufacturers would run a
            lower RPM rather than exceed the roadmap).
        met_target: whether the target IDR was attainable at all.
    """

    year: int
    point: RoadmapPoint
    achieved_idr_mb_s: float
    met_target: bool


def plan_roadmap(
    trends: TechnologyTrends = PAPER_TRENDS,
    years: Sequence[int] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1)),
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    platter_counts: Sequence[int] = ROADMAP_PLATTER_COUNTS,
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    calibration: Optional[ThermalCalibration] = None,
) -> List[YearDesign]:
    """Run the paper's year-by-year design algorithm.

    For each year: prefer designs that meet the target IDR, and among them
    the one with the highest capacity (steps 1-2: raise RPM; step 3: shrink
    platters sacrifices capacity only when needed; step 4: adding platters
    buys capacity back).  When no design meets the target, fall back to the
    highest-IDR design (the roadmap has been fallen off).
    """
    by_count: dict = {}
    for count in platter_counts:
        by_count[count] = thermal_roadmap(
            trends=trends,
            years=years,
            sizes=sizes,
            platter_count=count,
            zone_count=zone_count,
            envelope_c=envelope_c,
            calibration=calibration,
        )
    designs: List[YearDesign] = []
    for year in years:
        candidates: List[RoadmapPoint] = [
            point
            for count in platter_counts
            for point in by_count[count]
            if point.year == year
        ]
        meeting = [point for point in candidates if point.meets_target]
        if meeting:
            chosen = max(meeting, key=lambda p: (p.capacity_gb, p.max_idr_mb_s))
            achieved = chosen.target_idr_mb_s
            met = True
        else:
            chosen = max(candidates, key=lambda p: (p.max_idr_mb_s, p.capacity_gb))
            achieved = chosen.max_idr_mb_s
            met = False
        designs.append(
            YearDesign(year=year, point=chosen, achieved_idr_mb_s=achieved, met_target=met)
        )
    return designs


def first_shortfall_year(points: Sequence[RoadmapPoint]) -> Optional[int]:
    """First year in which no provided point meets the target, or None."""
    years = sorted({point.year for point in points})
    for year in years:
        if not any(p.meets_target for p in points if p.year == year):
            return year
    return None


def idr_series(
    points: Sequence[RoadmapPoint], diameter_in: float
) -> List[Tuple[int, float]]:
    """(year, max IDR) series for one platter size, for plotting Figure 2."""
    return [
        (p.year, p.max_idr_mb_s)
        for p in sorted(points, key=lambda p: p.year)
        if p.diameter_in == diameter_in
    ]


def capacity_series(
    points: Sequence[RoadmapPoint], diameter_in: float
) -> List[Tuple[int, float]]:
    """(year, capacity) series for one platter size (Figure 2 d-f)."""
    return [
        (p.year, p.capacity_gb)
        for p in sorted(points, key=lambda p: p.year)
        if p.diameter_in == diameter_in
    ]
