"""Technology scaling trends (paper §4).

The roadmap starts from the Hitachi trend charts [22]: in 1999 the industry
shipped 270 KBPI / 20 KTPI / 47 MB/s, with compound annual growth rates of
30% (BPI), 50% (TPI) and 40% (IDR target).  Density growth is expected to
slow after 2003 — the paper re-fits the CGRs to 14% (BPI) and 28% (TPI) so
that areal density reaches the conservative terabit design point (1.85 MBPI
x 540 KTPI, BAR 3.42) in 2010.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capacity.recording import RecordingTechnology
from repro.constants import IDR_TARGET_CGR, TERABIT_AREAL_DENSITY
from repro.errors import RoadmapError


@dataclass(frozen=True)
class TechnologyTrends:
    """Parameterized density/IDR growth trends.

    Attributes:
        base_year: anchor year for the published densities.
        base_kbpi: linear density in the anchor year, KBPI.
        base_ktpi: track density in the anchor year, KTPI.
        base_idr_mb_s: shipped IDR in the anchor year, MB/s.
        early_bpi_cgr / early_tpi_cgr: growth rates through ``slowdown_year``.
        late_bpi_cgr / late_tpi_cgr: growth rates after the slowdown.
        slowdown_year: last year grown at the early rates.
        idr_cgr: the industry IDR growth-rate target.
    """

    base_year: int = 1999
    base_kbpi: float = 270.0
    base_ktpi: float = 20.0
    base_idr_mb_s: float = 47.0
    early_bpi_cgr: float = 0.30
    early_tpi_cgr: float = 0.50
    late_bpi_cgr: float = 0.14
    late_tpi_cgr: float = 0.28
    slowdown_year: int = 2003
    idr_cgr: float = IDR_TARGET_CGR

    def __post_init__(self) -> None:
        if self.slowdown_year < self.base_year:
            raise RoadmapError(
                f"slowdown year {self.slowdown_year} precedes base year {self.base_year}"
            )

    def _growth(self, year: int, early_cgr: float, late_cgr: float) -> float:
        if year < self.base_year:
            raise RoadmapError(
                f"year {year} precedes the trend anchor {self.base_year}"
            )
        early_years = min(year, self.slowdown_year) - self.base_year
        late_years = max(year - self.slowdown_year, 0)
        return (1.0 + early_cgr) ** early_years * (1.0 + late_cgr) ** late_years

    # -- densities --------------------------------------------------------------

    def kbpi(self, year: int) -> float:
        """Linear density in KBPI for a year."""
        return self.base_kbpi * self._growth(year, self.early_bpi_cgr, self.late_bpi_cgr)

    def ktpi(self, year: int) -> float:
        """Track density in KTPI for a year."""
        return self.base_ktpi * self._growth(year, self.early_tpi_cgr, self.late_tpi_cgr)

    def technology(self, year: int) -> RecordingTechnology:
        """Recording-technology point projected for a year."""
        return RecordingTechnology.from_kilo_units(self.kbpi(year), self.ktpi(year))

    def areal_density(self, year: int) -> float:
        """Projected areal density, bits per square inch."""
        return self.technology(year).areal_density

    def bit_aspect_ratio(self, year: int) -> float:
        """Projected BAR (drops from ~6-7 toward ~3.4 at the terabit point)."""
        return self.technology(year).bit_aspect_ratio

    def terabit_year(self, search_until: int = 2030) -> int:
        """First year the projection reaches 1 Tb/in^2."""
        for year in range(self.base_year, search_until + 1):
            if self.areal_density(year) >= TERABIT_AREAL_DENSITY:
                return year
        raise RoadmapError(
            f"areal density never reaches terabit by {search_until}"
        )

    # -- targets -----------------------------------------------------------------

    def target_idr_mb_s(self, year: int) -> float:
        """The 40%-CGR IDR target for a year, MB/s."""
        if year < self.base_year:
            raise RoadmapError(
                f"year {year} precedes the trend anchor {self.base_year}"
            )
        return self.base_idr_mb_s * (1.0 + self.idr_cgr) ** (year - self.base_year)


#: The paper's trend parameterization.
PAPER_TRENDS = TechnologyTrends()
