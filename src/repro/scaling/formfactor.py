"""Form-factor sensitivity study (paper §4.2.2).

Moving a 2.6-inch platter from the 3.5-inch enclosure to the 2.5-inch form
factor shrinks the base/cover area that convects heat to the outside, so the
same design runs hotter.  The paper finds the smaller enclosure falls off
the roadmap already in 2002 and needs roughly 15 C of extra cooling before
it becomes comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.constants import (
    AMBIENT_TEMPERATURE_C,
    ROADMAP_FIRST_YEAR,
    ROADMAP_LAST_YEAR,
    ROADMAP_ZONES,
    THERMAL_ENVELOPE_C,
)
from repro.geometry.enclosure import FORM_FACTOR_25, FORM_FACTOR_35, Enclosure
from repro.scaling.roadmap import RoadmapPoint, thermal_roadmap
from repro.scaling.trends import PAPER_TRENDS, TechnologyTrends
from repro.thermal.envelope import max_rpm_within_envelope
from repro.thermal.model import ThermalCalibration


@dataclass(frozen=True)
class FormFactorComparison:
    """Roadmaps of the same media in two enclosures.

    Attributes:
        diameter_in: platter size (the paper uses 2.6 inches).
        large: roadmap points in the 3.5-inch enclosure.
        small: roadmap points in the 2.5-inch enclosure.
    """

    diameter_in: float
    large: List[RoadmapPoint]
    small: List[RoadmapPoint]

    def small_meets_target_ever(self) -> bool:
        """Whether the small enclosure meets the target in any year."""
        return any(p.meets_target for p in self.small)


def formfactor_study(
    diameter_in: float = 2.6,
    platter_count: int = 1,
    trends: TechnologyTrends = PAPER_TRENDS,
    years: Sequence[int] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1)),
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    large: Enclosure = FORM_FACTOR_35,
    small: Enclosure = FORM_FACTOR_25,
    calibration: Optional[ThermalCalibration] = None,
) -> FormFactorComparison:
    """Compare the roadmap of one platter size across two enclosures."""
    common = dict(
        trends=trends,
        years=years,
        sizes=(diameter_in,),
        platter_count=platter_count,
        zone_count=zone_count,
        envelope_c=envelope_c,
        ambient_c=ambient_c,
        calibration=calibration,
    )
    return FormFactorComparison(
        diameter_in=diameter_in,
        large=thermal_roadmap(enclosure=large, **common),
        small=thermal_roadmap(enclosure=small, **common),
    )


def extra_cooling_needed_c(
    diameter_in: float = 2.6,
    platter_count: int = 1,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    large: Enclosure = FORM_FACTOR_35,
    small: Enclosure = FORM_FACTOR_25,
    calibration: Optional[ThermalCalibration] = None,
    tolerance_c: float = 0.05,
) -> float:
    """Ambient reduction needed for the small enclosure to match the large.

    Finds (by bisection, exploiting the network's unit ambient gain) the
    cooling delta at which the small enclosure supports the same maximum
    in-envelope RPM as the large one at the paper's baseline ambient.
    """
    target_rpm = max_rpm_within_envelope(
        diameter_in,
        platter_count=platter_count,
        envelope_c=envelope_c,
        ambient_c=ambient_c,
        enclosure=large,
        calibration=calibration,
    )

    def small_rpm(delta: float) -> float:
        from repro.errors import EnvelopeError

        try:
            return max_rpm_within_envelope(
                diameter_in,
                platter_count=platter_count,
                envelope_c=envelope_c,
                ambient_c=ambient_c - delta,
                enclosure=small,
                calibration=calibration,
            )
        except EnvelopeError:
            return 0.0

    low, high = 0.0, 60.0
    if small_rpm(low) >= target_rpm:
        return 0.0
    if small_rpm(high) < target_rpm:
        raise ValueError(
            "even 60 C of extra cooling cannot equalize the enclosures"
        )
    while high - low > tolerance_c:
        mid = 0.5 * (low + high)
        if small_rpm(mid) >= target_rpm:
            high = mid
        else:
            low = mid
    return high
