"""Cooling-system sensitivity study (paper §4.2.1, Figure 3).

Better external cooling lowers the effective ambient, letting the same
design spin faster before hitting the envelope.  The paper examines 5 C and
10 C cooler ambients and finds they extend the roadmap by roughly one and
two years respectively — while noting such cooling is impractical in the
commodity market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.constants import (
    ROADMAP_FIRST_YEAR,
    ROADMAP_LAST_YEAR,
    ROADMAP_PLATTER_SIZES_IN,
    ROADMAP_ZONES,
    THERMAL_ENVELOPE_C,
)
from repro.scaling.roadmap import (
    RoadmapPoint,
    cooling_budget_ambient_c,
    first_shortfall_year,
    thermal_roadmap,
)
from repro.scaling.trends import PAPER_TRENDS, TechnologyTrends
from repro.thermal.model import ThermalCalibration

#: The paper's cooling scenarios: ambient reduction in Celsius.
PAPER_COOLING_DELTAS = (0.0, 5.0, 10.0)


@dataclass(frozen=True)
class CoolingScenario:
    """A cooling configuration and its roadmap.

    Attributes:
        delta_c: ambient reduction relative to the baseline cooling system.
        ambient_c: resulting effective ambient.
        points: the thermal roadmap under this cooling.
    """

    delta_c: float
    ambient_c: float
    points: List[RoadmapPoint]

    def last_year_meeting_target(self, diameter_in: float) -> Optional[int]:
        """Last roadmap year this platter size still meets the target."""
        meeting = [
            p.year
            for p in self.points
            if p.diameter_in == diameter_in and p.meets_target
        ]
        return max(meeting) if meeting else None

    def first_shortfall_year(self) -> Optional[int]:
        """First year no studied size meets the target."""
        return first_shortfall_year(self.points)


def cooling_study(
    deltas_c: Sequence[float] = PAPER_COOLING_DELTAS,
    trends: TechnologyTrends = PAPER_TRENDS,
    years: Sequence[int] = tuple(range(ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR + 1)),
    sizes: Sequence[float] = ROADMAP_PLATTER_SIZES_IN,
    platter_count: int = 1,
    zone_count: int = ROADMAP_ZONES,
    envelope_c: float = THERMAL_ENVELOPE_C,
    calibration: Optional[ThermalCalibration] = None,
) -> Dict[float, CoolingScenario]:
    """Run the roadmap under several cooling improvements (Figure 3).

    Returns:
        Mapping from ambient reduction (C) to the resulting scenario.
    """
    baseline_ambient = cooling_budget_ambient_c(
        platter_count,
        trends=trends,
        zone_count=zone_count,
        envelope_c=envelope_c,
        calibration=calibration,
    )
    scenarios: Dict[float, CoolingScenario] = {}
    for delta in deltas_c:
        ambient = baseline_ambient - delta
        points = thermal_roadmap(
            trends=trends,
            years=years,
            sizes=sizes,
            platter_count=platter_count,
            zone_count=zone_count,
            envelope_c=envelope_c,
            ambient_c=ambient,
            calibration=calibration,
        )
        scenarios[delta] = CoolingScenario(
            delta_c=delta, ambient_c=ambient, points=points
        )
    return scenarios


def roadmap_extension_years(
    scenarios: Dict[float, CoolingScenario], diameter_in: float
) -> Dict[float, int]:
    """How many extra years each cooling delta buys for a platter size,
    relative to the baseline (delta 0) scenario."""
    if 0.0 not in scenarios:
        raise ValueError("scenarios must include the 0.0 C baseline")
    base_last = scenarios[0.0].last_year_meeting_target(diameter_in)
    if base_last is None:
        base_last = ROADMAP_FIRST_YEAR - 1
    extensions: Dict[float, int] = {}
    for delta, scenario in scenarios.items():
        last = scenario.last_year_meeting_target(diameter_in)
        if last is None:
            last = ROADMAP_FIRST_YEAR - 1
        extensions[delta] = last - base_last
    return extensions
