"""Content-addressed result store for sweep memoization.

PR 4 made every sweep task a pure, deterministic function of its frozen
task dataclass — bit-identical serial vs parallel, across hosts.  That
purity is a cache license: this package keys each task by a canonical
BLAKE2b hash of its fully-normalized configuration
(:mod:`repro.store.canonical`) and persists result envelopes as verified
JSON under ``~/.cache/repro`` (:mod:`repro.store.store`), so repeated and
overlapping sweeps — and sweeps resumed after a crash — become cache hits
instead of recomputation.

The two halves are deliberately separate: canonicalization is pure and
property-tested (key discipline), storage is all mechanics (atomic
writes, integrity verification, quarantine, LRU GC).  Wiring into the
sweep executor lives in :mod:`repro.simulation.resilience`
(``run_sweep_cached``); the task key and result codec for workload sweeps
live next to their dataclasses in :mod:`repro.simulation.sweep`.

See ``docs/result_store.md`` for the key schema, invalidation rules, GC
policy and resume semantics.
"""

from __future__ import annotations

from repro.store.canonical import (
    CODE_SCHEMA_VERSION,
    STORE_SCHEMA,
    canonical_json,
    canonicalize,
    config_key,
    decode_payload,
    encode_payload,
    payload_digest,
    stable_json,
)
from repro.store.store import (
    DEFAULT_MAX_BYTES,
    ResultStore,
    StoreStats,
    VerifyReport,
    default_store_root,
)

__all__ = [
    "STORE_SCHEMA",
    "CODE_SCHEMA_VERSION",
    "canonicalize",
    "canonical_json",
    "stable_json",
    "config_key",
    "payload_digest",
    "encode_payload",
    "decode_payload",
    "ResultStore",
    "StoreStats",
    "VerifyReport",
    "DEFAULT_MAX_BYTES",
    "default_store_root",
]
