"""The content-addressed result store.

Entries live as small JSON envelopes under a cache root (by default
``~/.cache/repro``, overridable with ``REPRO_STORE_DIR`` or the
constructor), fanned out over 256 two-hex-character shard directories so
no single directory grows unbounded::

    <root>/objects/3f/3fa49c...e1.json     # one result envelope
    <root>/quarantine/3fa49c...e1.json     # entries that failed integrity

Every envelope carries its own payload digest; :meth:`ResultStore.get`
re-verifies it on load, so a bit-flipped, truncated or hand-edited entry
is *quarantined* (moved aside for forensics, counted as ``store.corrupt``)
and reported as a miss — a corrupt cache can cost recomputation, never
correctness.  Writes are atomic (temp file + ``os.replace``) so a killed
sweep can't leave a torn entry behind, which is what makes
``--resume``-after-crash safe.

Size is LRU-capped: each hit refreshes the entry's mtime, and
:meth:`ResultStore.gc` evicts oldest-touched entries until the store fits
``max_bytes`` (``REPRO_STORE_MAX_BYTES`` overrides the default cap).
``put`` triggers the same GC opportunistically, so a long sweep keeps the
store bounded without an external cron.

Hit/miss/put/evict/corrupt counts are mirrored both onto plain instance
counters (for CLI output) and — when a telemetry handle is supplied — as
``store.*`` counters in the standard metrics registry, so the JSON/CSV/
Prometheus exporters report cache behaviour alongside everything else.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import StoreError
from repro.store.canonical import (
    KEY_HEX_LENGTH,
    STORE_SCHEMA,
    payload_digest,
    stable_json,
)
from repro.units import MIB

__all__ = [
    "DEFAULT_MAX_BYTES",
    "ResultStore",
    "StoreStats",
    "VerifyReport",
    "default_store_root",
]

#: Default size cap for the store (the envelope JSONs are small; paper-
#: scale sweeps with telemetry snapshots are the case that needs a cap).
DEFAULT_MAX_BYTES = 256 * MIB

_ENV_ROOT = "REPRO_STORE_DIR"
_ENV_MAX_BYTES = "REPRO_STORE_MAX_BYTES"


def default_store_root() -> Path:
    """The store root honouring ``REPRO_STORE_DIR`` (else ``~/.cache/repro``)."""
    override = os.environ.get(_ENV_ROOT)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def _default_max_bytes() -> int:
    override = os.environ.get(_ENV_MAX_BYTES)
    if override:
        try:
            value = int(override)
        except ValueError as exc:
            raise StoreError(
                f"{_ENV_MAX_BYTES} must be an integer, got {override!r}"
            ) from exc
        if value <= 0:
            raise StoreError(f"{_ENV_MAX_BYTES} must be positive, got {value}")
        return value
    return DEFAULT_MAX_BYTES


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time inventory of the store directory."""

    root: str
    entries: int
    total_bytes: int
    max_bytes: int
    quarantined: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "quarantined": self.quarantined,
        }


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity pass."""

    checked: int = 0
    ok: int = 0
    corrupt: int = 0
    quarantined_keys: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "checked": self.checked,
            "ok": self.ok,
            "corrupt": self.corrupt,
            "quarantined_keys": list(self.quarantined_keys),
        }


class ResultStore:
    """Content-addressed persistence for sweep task results.

    Args:
        root: store directory; defaults to ``REPRO_STORE_DIR`` or
            ``~/.cache/repro``.  Created lazily on first write.
        max_bytes: LRU size cap enforced by :meth:`gc` (and
            opportunistically after :meth:`put`).
        telemetry: optional :class:`repro.telemetry.Telemetry`; mirrors
            ``store.hit`` / ``store.miss`` / ``store.put`` /
            ``store.evict`` / ``store.corrupt`` counters.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        from repro.telemetry import maybe

        self.root = Path(root).expanduser() if root is not None else default_store_root()
        self.max_bytes = max_bytes if max_bytes is not None else _default_max_bytes()
        if self.max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive, got {self.max_bytes}")
        self._tel = maybe(telemetry)
        # Session counters (cumulative over this ResultStore's lifetime).
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        # Lazily-initialized running size estimate; exact scans happen in
        # gc()/stats(), puts keep it incrementally fresh in between so a
        # long sweep isn't O(entries) per task.
        self._approx_bytes: Optional[int] = None

    # -- paths ---------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def path_for(self, key: str) -> Path:
        """Shard path of one entry (``objects/<key[:2]>/<key>.json``)."""
        self._check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _check_key(key: str) -> None:
        if (
            len(key) != KEY_HEX_LENGTH
            or not all(c in "0123456789abcdef" for c in key)
        ):
            raise StoreError(f"malformed store key {key!r}")

    # -- claims --------------------------------------------------------------
    #
    # Claim files are the coordination medium of the shared-store execution
    # backend: a worker that wants to compute a task first creates
    # ``claims/<key>.claim`` with O_EXCL — exactly one process can win.
    # Losers wait for either the winner's result (a normal ``get`` hit once
    # the winner has ``put`` and released) or a stale claim (winner died;
    # age-based takeover).  Claims are advisory and crash-safe by *absence
    # of meaning*: a leftover claim only ever delays recomputation, never
    # changes a result, because results remain content-addressed.

    @property
    def claims_dir(self) -> Path:
        return self.root / "claims"

    def claim_path(self, key: str) -> Path:
        self._check_key(key)
        return self.claims_dir / f"{key}.claim"

    def try_claim(self, key: str) -> bool:
        """Atomically claim a key for computation; True when won.

        O_EXCL makes the race loser-visible: at most one process holds a
        live claim on a key at any instant.
        """
        path = self.claim_path(key)
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        try:
            os.write(fd, f'{{"pid": {os.getpid()}}}\n'.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def release_claim(self, key: str) -> None:
        """Drop a claim (ours or a stale one); missing claims are fine.

        Only *absence* is tolerated: a claim that exists but cannot be
        unlinked (permissions, read-only mount, a directory squatting on
        the path) would silently stall every peer for the full stale
        window if swallowed, so it is counted as
        ``store.claim_release_failed`` and re-raised for the caller to
        surface.
        """
        try:
            self.claim_path(key).unlink()
        except FileNotFoundError:
            pass
        except OSError:
            self._count("store.claim_release_failed")
            raise

    def claim_mtime(self, key: str) -> Optional[float]:
        """The claim file's current mtime; None if unclaimed.

        This is an opaque observation token for
        :meth:`break_claim_if_stale`, not a timestamp to compare against
        the local clock: on a shared (e.g. NFS) store the mtime is
        stamped by the *peer's* clock, so wall-clock arithmetic on it is
        exactly the skew bug the token protocol exists to avoid.
        """
        try:
            return self.claim_path(key).stat().st_mtime
        except OSError:
            return None

    def break_claim_if_stale(self, key: str, observed_mtime: float) -> bool:
        """Break a claim only if it is provably the one we watched go stale.

        Re-stats immediately before unlinking and only proceeds when the
        mtime still equals ``observed_mtime`` (the value the caller first
        recorded via :meth:`claim_mtime`).  A claim whose mtime moved was
        refreshed or re-won by a live peer in the meantime — breaking it
        would kill a healthy computation — so the call returns False and
        the caller should restart its staleness observation.
        """
        current = self.claim_mtime(key)
        if current is None:
            return False
        # Identity check on the stat token, not numeric tolerance: any
        # change at all means a different claim generation.
        if current != observed_mtime:  # thermolint: disable=TL002
            return False
        self.release_claim(key)
        return True

    def claim_age_s(self, key: str) -> Optional[float]:
        """Seconds since the claim on ``key`` was created; None if unclaimed.

        Wall-clock arithmetic against the claim's mtime is only
        meaningful when claimer and observer share a clock (same host).
        Cross-host staleness decisions must use the
        :meth:`claim_mtime` / :meth:`break_claim_if_stale` observation
        protocol instead.
        """
        try:
            mtime = self.claim_path(key).stat().st_mtime
        except OSError:
            return None
        return max(0.0, time.time() - mtime)

    # -- counters ------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._tel is not None:
            self._tel.count(name, amount)

    def bind_telemetry(self, telemetry: Optional[Any]) -> None:
        """Attach a telemetry handle if the store doesn't have one yet.

        The cached sweep runner calls this so a store constructed without
        instrumentation still mirrors its ``store.*`` counters into the
        run's registry.
        """
        from repro.telemetry import maybe

        if self._tel is None:
            self._tel = maybe(telemetry)

    # -- core operations -----------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Fetch one payload; ``None`` on miss *or* on a corrupt entry.

        A hit refreshes the entry's mtime (the LRU clock).  Integrity is
        re-verified on every load: a mismatching digest, a malformed
        envelope or unreadable JSON quarantines the entry and reports a
        miss — the caller recomputes, the bad bytes are preserved for
        inspection, and the sweep never crashes on cache state.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            self._count("store.miss")
            return None
        except UnicodeDecodeError:
            # A bit-flip can make the bytes invalid UTF-8 before they are
            # invalid JSON; that is corruption, not a miss-by-absence.
            raw = None
        payload = self._validate(key, raw) if raw is not None else None
        if payload is None:
            self._quarantine(path, key)
            self.misses += 1
            self._count("store.miss")
            return None
        try:
            os.utime(path)  # LRU recency
        except OSError:  # pragma: no cover - entry raced away
            pass
        self.hits += 1
        self._count("store.hit")
        return payload

    def _validate(self, key: str, raw: str) -> Optional[Any]:
        """Parse + integrity-check one envelope; None when corrupt."""
        try:
            envelope = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema") != STORE_SCHEMA:
            return None
        if envelope.get("key") != key:
            return None
        if "payload" not in envelope or "payload_digest" not in envelope:
            return None
        if payload_digest(envelope["payload"]) != envelope["payload_digest"]:
            return None
        return envelope["payload"]

    def _quarantine(self, path: Path, key: str) -> None:
        """Move a failed entry aside and count it."""
        self.corrupt += 1
        self._count("store.corrupt")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            # Last resort: a corrupt entry we cannot move must not be
            # served again, so drop it.
            try:
                path.unlink()
            except OSError:  # pragma: no cover - nothing left to do
                pass

    def note_put_failed(self) -> None:
        """Count a persist attempt that failed (disk full, perms, ...)."""
        self._count("store.put_failed")

    def reject(self, key: str) -> None:
        """Quarantine an entry whose decoded *meaning* a caller refused.

        The integrity digest only proves the bytes are what was written;
        if a codec still cannot reconstruct a result from them (a schema
        drift that escaped the version salt), the entry is as useless as
        a corrupt one and is retired the same way.
        """
        path = self.path_for(key)
        if path.exists():
            self._quarantine(path, key)

    def put(self, key: str, payload: Any, kind: str = "") -> Path:
        """Persist one payload under its content key, atomically.

        Re-putting an existing key overwrites it (the content address
        guarantees the payload is equivalent, and overwriting self-heals
        any quarantined or evicted entry).
        """
        path = self.path_for(key)
        envelope = {
            "schema": STORE_SCHEMA,
            "key": key,
            "kind": kind,
            "payload": payload,
            "payload_digest": payload_digest(payload),
        }
        document = stable_json(envelope) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key[:8]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(document)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:  # pragma: no cover - already renamed/removed
                pass
            raise
        self.puts += 1
        self._count("store.put")
        if self._approx_bytes is not None:
            self._approx_bytes += len(document.encode("utf-8"))
        else:
            self._approx_bytes = self._scan_bytes()
        if self._approx_bytes > self.max_bytes:
            self.gc()
        return path

    # -- maintenance ---------------------------------------------------------

    def _iter_entries(self) -> List[Path]:
        if not self.objects_dir.is_dir():
            return []
        return sorted(self.objects_dir.glob("*/*.json"))

    def _scan_bytes(self) -> int:
        total = 0
        for path in self._iter_entries():
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                pass
        return total

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the store fits the cap.

        Returns the number of entries evicted.
        """
        cap = max_bytes if max_bytes is not None else self.max_bytes
        if cap <= 0:
            raise StoreError(f"gc cap must be positive, got {cap}")
        entries = []
        total = 0
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - entry raced away
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        evicted = 0
        entries.sort()  # oldest mtime (least recently used) first
        for _mtime, size, path in entries:
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - entry raced away
                continue
            total -= size
            evicted += 1
            self.evictions += 1
            self._count("store.evict")
        self._approx_bytes = total
        return evicted

    def verify(self, quarantine: bool = True) -> VerifyReport:
        """Integrity-check every entry; optionally quarantine failures."""
        report = VerifyReport()
        for path in self._iter_entries():
            key = path.stem
            report.checked += 1
            try:
                self._check_key(key)
                raw = path.read_text(encoding="utf-8")
            except (StoreError, OSError, UnicodeDecodeError):
                payload = None
            else:
                payload = self._validate(key, raw)
            if payload is None:
                report.corrupt += 1
                report.quarantined_keys.append(key)
                if quarantine:
                    self._quarantine(path, key)
            else:
                report.ok += 1
        return report

    def stats(self) -> StoreStats:
        """Exact inventory (scans the directory)."""
        entries = self._iter_entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                pass
        self._approx_bytes = total
        quarantined = (
            len(list(self.quarantine_dir.glob("*.json")))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return StoreStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=total,
            max_bytes=self.max_bytes,
            quarantined=quarantined,
        )
