"""Canonical configuration hashing for the result store.

A cache is only as safe as its keys.  Two sweep configurations that mean
the same thing must hash identically no matter how they were spelled —
dict insertion order, ``15000`` vs ``15000.0``, ``-0.0`` vs ``0.0`` —
and two configurations that differ in *any* material field must never
collide.  This module is that discipline, isolated from storage
mechanics so it can be property-tested exhaustively:

* :func:`canonicalize` — normalize an arbitrary JSON-shaped value into a
  canonical form (sorted mapping keys, tuples folded to lists, integral
  floats folded to ints, ``-0.0`` folded to ``0.0``, non-finite floats
  folded to string sentinels);
* :func:`canonical_json` — the one true serialization of that form
  (sorted keys, no whitespace, ASCII);
* :func:`config_key` — the BLAKE2b content address of a
  ``(kind, config)`` pair, salted with the store format version and a
  code-schema version so refactors that change result *meaning* can
  invalidate every stale entry with a one-line bump.

Everything here is pure and stdlib-only; no filesystem, no clock.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping, Union

from repro.errors import StoreError

__all__ = [
    "STORE_SCHEMA",
    "CODE_SCHEMA_VERSION",
    "canonicalize",
    "canonical_json",
    "stable_json",
    "config_key",
    "payload_digest",
    "encode_payload",
    "decode_payload",
]

#: Version of the on-disk store format itself (envelope layout, digest
#: algorithm, key derivation).  Bumping it orphans every existing entry.
STORE_SCHEMA = "repro.store/1"

#: Version of the *simulation output semantics*.  Bump this whenever a
#: model change makes previously cached results wrong (new physics, a
#: bugfix that changes numbers, a field added to a result).  It is salted
#: into every key, so stale entries simply stop matching — no migration.
CODE_SCHEMA_VERSION = 1

#: Integral floats up to this magnitude are folded into ints (beyond
#: 2**53 a float no longer represents every integer exactly, so folding
#: would conflate genuinely different configs).
_EXACT_INT_BOUND = 2**53

#: Hex digest length of a content key (BLAKE2b-128).
KEY_HEX_LENGTH = 32

Primitive = Union[None, bool, int, float, str]


def _canonical_number(value: Union[int, float]) -> Union[int, float, str]:
    """Fold numeric spellings that compare equal into one representation.

    ``15000`` and ``15000.0`` configure the same sweep point; ``-0.0``
    and ``0.0`` are indistinguishable to every model in this package.
    Non-finite floats have no strict-JSON form, so they become string
    sentinels (a config should never contain them, but a key function
    that crashes on weird input is worse than one with a defined answer).
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "__nan__"
        if math.isinf(value):
            return "__inf__" if value > 0 else "__-inf__"
        # Exact on purpose: only true zero (either sign) folds to the
        # int; a tolerance would conflate distinct small configs.
        if value == 0.0:  # thermolint: disable=TL002
            return 0
        if value.is_integer() and abs(value) < _EXACT_INT_BOUND:
            return int(value)
        return value
    return value


def canonicalize(value: Any) -> Any:
    """Normalize a JSON-shaped value into its canonical form.

    The canonical form is what gets hashed, so *equal meaning implies
    equal canonical form*: mapping keys are sorted, sequences become
    lists, and numbers are folded by :func:`_canonical_number`.  Mapping
    keys must be strings (JSON's own restriction); any other type is a
    :class:`~repro.errors.StoreError` rather than a silent collision.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        return _canonical_number(value)
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value.keys()):
            if not isinstance(key, str):
                raise StoreError(
                    f"config mapping keys must be strings, got {type(key).__name__}"
                )
            out[key] = canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    raise StoreError(
        f"cannot canonicalize a {type(value).__name__} (JSON-shaped values only)"
    )


def canonical_json(value: Any) -> str:
    """Serialize ``value``'s canonical form with zero degrees of freedom."""
    return stable_json(canonicalize(value))


def stable_json(value: Any) -> str:
    """Deterministic JSON of an *already concrete* value (no number folding).

    Used for payload digests, where the bytes on disk — not the meaning —
    are what integrity verification must cover.
    """
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def config_key(
    kind: str,
    config: Mapping[str, Any],
    schema_version: int = CODE_SCHEMA_VERSION,
) -> str:
    """The content address of one task configuration.

    Args:
        kind: task family tag (e.g. ``"workload_sweep/1"``); two families
            with coincidentally identical configs must not collide.
        config: the fully-normalized task configuration mapping.
        schema_version: code-schema salt, see :data:`CODE_SCHEMA_VERSION`.

    Returns:
        A 32-hex-character BLAKE2b-128 digest, stable across processes,
        hosts and Python versions.
    """
    document = canonical_json(
        {
            "store_schema": STORE_SCHEMA,
            "code_schema": schema_version,
            "kind": kind,
            "config": canonicalize(config),
        }
    )
    return hashlib.blake2b(
        document.encode("utf-8"), digest_size=KEY_HEX_LENGTH // 2
    ).hexdigest()


def payload_digest(payload: Any) -> str:
    """Integrity digest of a stored payload (over its stable serialization)."""
    return hashlib.blake2b(
        stable_json(payload).encode("utf-8"), digest_size=16
    ).hexdigest()


# ---------------------------------------------------------------------------
# Exact JSON-safe payload encoding
# ---------------------------------------------------------------------------

#: Sentinel key marking an encoded non-finite float.  Strict JSON
#: (``allow_nan=False``) rejects ``inf``/``nan``, but telemetry
#: snapshots legitimately contain them (an empty histogram's min is
#: ``+inf``); encoding them as tagged objects keeps the round trip exact
#: instead of lossy.
_FLOAT_TAG = "$repro.float"

_NONFINITE_ENCODE = {"inf": math.inf, "-inf": -math.inf}


def encode_payload(value: Any) -> Any:
    """Make ``value`` strict-JSON serializable without losing information.

    Tuples become lists (callers that care reconstruct them in their
    codec); non-finite floats become ``{"$repro.float": "inf"}``-style
    tagged objects.  Everything else passes through unchanged.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return {_FLOAT_TAG: "nan"}
        if math.isinf(value):
            return {_FLOAT_TAG: "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise StoreError(
                    f"payload mapping keys must be strings, got {type(key).__name__}"
                )
            out[key] = encode_payload(item)
        return out
    if isinstance(value, (list, tuple)):
        return [encode_payload(item) for item in value]
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise StoreError(
        f"cannot encode a {type(value).__name__} into a store payload"
    )


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload` (tagged floats back to floats)."""
    if isinstance(value, dict):
        if len(value) == 1 and _FLOAT_TAG in value:
            tag = value[_FLOAT_TAG]
            if tag == "nan":
                return math.nan
            if tag in _NONFINITE_ENCODE:
                return _NONFINITE_ENCODE[tag]
            raise StoreError(f"unknown float tag {tag!r} in store payload")
        return {key: decode_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    return value
